"""Incremental mining over growing databases.

Streaming settings (another day of call detail, another trading period)
append transactions to an existing database.  Re-mining from scratch
wastes the work for every part of the pattern space the new transaction
cannot touch, and CLAN's DFS structure pins down exactly which part
that is:

    Appending transaction T changes the support of a pattern C iff C
    has an embedding in T.  Any such C consists solely of labels that
    occur in T, so under structural redundancy pruning its whole DFS
    subtree is rooted at a label of T.  Closedness of an unchanged C
    compares sup(C) with sup(C ◇ β); a change in the latter requires an
    embedding of C ◇ β ⊇ C in T, impossible when C has none.  Hence
    subtrees rooted at labels absent from T are byte-for-byte stable —
    results, supports, witnesses, closedness.

``IncrementalMiner`` therefore caches results per root label and, on
append, re-mines only the roots labelled in the new transaction (plus
any labels whose global frequency status flipped).  Equality with full
re-mining is property-tested.

Only *closed* (or all-frequent) mining with an **absolute** support
threshold is supported: a relative threshold re-scales with every
append and would invalidate every subtree.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .canonical import Label
from .config import MinerConfig
from .miner import ClanMiner
from .pattern import CliquePattern
from .results import MiningResult


class IncrementalMiner:
    """Closed clique mining with cheap transaction appends."""

    def __init__(
        self,
        database: Optional[GraphDatabase] = None,
        min_sup: int = 1,
        config: Optional[MinerConfig] = None,
    ) -> None:
        if not isinstance(min_sup, int) or isinstance(min_sup, bool) or min_sup < 1:
            raise MiningError(
                "incremental mining needs an absolute integer min_sup "
                "(a relative threshold changes meaning on every append)"
            )
        self.config = config if config is not None else MinerConfig()
        if not self.config.structural_redundancy_pruning:
            raise MiningError(
                "incremental mining partitions DFS roots and requires "
                "structural redundancy pruning"
            )
        self.min_sup = min_sup
        self.database = GraphDatabase(name="incremental")
        #: Cached per-root pattern lists (only for frequent roots).
        self._root_patterns: Dict[Label, List[CliquePattern]] = {}
        #: Counters of re-mining work, for tests and curiosity.
        self.roots_remined = 0
        self.roots_reused = 0
        for graph in database or ():
            self.add_transaction(graph)

    # ------------------------------------------------------------------
    def add_transaction(self, graph: Graph) -> Set[Label]:
        """Append one transaction; returns the root labels re-mined."""
        self.database.add(graph.copy(graph_id=len(self.database)))
        label_supports = self.database.label_supports()

        touched = set(graph.distinct_labels())
        stale: Set[Label] = set()
        for label in touched:
            if label_supports.get(label, 0) >= self.min_sup:
                stale.add(label)
        # Roots cached earlier but no longer frequent cannot exist —
        # supports only grow on append — but roots that just crossed
        # the threshold are covered by `touched` (their support changed
        # by this very transaction).
        for label in stale:
            self._remine_root(label)
        dropped = [
            label
            for label in self._root_patterns
            if label_supports.get(label, 0) < self.min_sup
        ]
        for label in dropped:  # pragma: no cover - impossible on append
            del self._root_patterns[label]
        self.roots_reused += len(self._root_patterns) - len(stale & set(self._root_patterns))
        return stale

    def _remine_root(self, label: Label) -> None:
        miner = ClanMiner(self.database, self.config)
        result = miner.mine(self.min_sup, root_labels=(label,))
        self._root_patterns[label] = list(result)
        self.roots_remined += 1

    # ------------------------------------------------------------------
    def result(self) -> MiningResult:
        """The current database's full mining result."""
        started = time.perf_counter()
        merged = MiningResult(min_sup=self.min_sup, closed_only=self.config.closed_only)
        patterns: List[CliquePattern] = []
        for root in self._root_patterns.values():
            patterns.extend(root)
        for pattern in sorted(patterns, key=lambda p: p.form.labels):
            merged.add(pattern)
        merged.elapsed_seconds = time.perf_counter() - started
        return merged

    def __len__(self) -> int:
        return len(self.database)
