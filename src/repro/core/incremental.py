"""Incremental mining over growing databases.

Streaming settings (another day of call detail, another trading period)
append transactions to an existing database.  Re-mining from scratch
wastes the work for every part of the pattern space the new transaction
cannot touch, and CLAN's DFS structure pins down exactly which part
that is:

    Appending transaction T changes the support of a pattern C iff C
    has an embedding in T.  Any such C consists solely of labels that
    occur in T, so under structural redundancy pruning its whole DFS
    subtree is rooted at a label of T.  Closedness of an unchanged C
    compares sup(C) with sup(C ◇ β); a change in the latter requires an
    embedding of C ◇ β ⊇ C in T, impossible when C has none.  Hence
    subtrees rooted at labels absent from T are byte-for-byte stable —
    results, supports, witnesses, closedness.

``IncrementalMiner`` therefore keeps its per-root results in a
:class:`~repro.core.cache.MiningCache` and, on append, re-mines only
the roots labelled in the new transaction (plus any labels whose global
frequency status flipped).  The append maps onto the cache as
:meth:`MiningCache.rekey_database`: entries of untouched roots migrate
to the grown database's fingerprint, touched roots' entries are
dropped (at *every* threshold — their subtrees changed), and threshold
changes invalidate nothing at all.  Sharing the cache with
:func:`~repro.core.cache.mine_with_cache` therefore lets a later
sweep at a higher threshold answer from the incremental state via the
sweep tier.  Equality with full re-mining is property-tested.

Only *closed* (or all-frequent) mining with an **absolute** support
threshold is supported: a relative threshold re-scales with every
append and would invalidate every subtree.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .cache import CachedRoot, MiningCache
from .canonical import Label
from .config import MinerConfig
from .miner import ClanMiner
from .pattern import CliquePattern
from .results import MiningResult


class IncrementalMiner:
    """Closed clique mining with cheap transaction appends.

    ``cache`` may be an externally shared :class:`MiningCache`; by
    default each miner owns a private one.  Either way the miner's
    state *is* the cache content under the current database
    fingerprint — there is no separate per-root store.
    """

    def __init__(
        self,
        database: Optional[GraphDatabase] = None,
        min_sup: int = 1,
        config: Optional[MinerConfig] = None,
        cache: Optional[MiningCache] = None,
    ) -> None:
        if not isinstance(min_sup, int) or isinstance(min_sup, bool) or min_sup < 1:
            raise MiningError(
                "incremental mining needs an absolute integer min_sup "
                "(a relative threshold changes meaning on every append)"
            )
        self.config = config if config is not None else MinerConfig()
        if not self.config.structural_redundancy_pruning:
            raise MiningError(
                "incremental mining partitions DFS roots and requires "
                "structural redundancy pruning"
            )
        self.min_sup = min_sup
        self.database = GraphDatabase(name="incremental")
        self.cache = cache if cache is not None else MiningCache()
        self._config_digest = self.config.digest()
        self._fingerprint = self._fingerprint_of(self.database)
        #: Counters of re-mining work, for tests and curiosity.
        #: ``roots_remined`` counts root subtrees searched; per append,
        #: ``roots_reused`` counts the frequent roots *not* re-mined —
        #: the work the incremental lemma saved over a full re-mine.
        self.roots_remined = 0
        self.roots_reused = 0
        for graph in database or ():
            self.add_transaction(graph)

    @staticmethod
    def _fingerprint_of(database: GraphDatabase) -> str:
        from ..io.runlog import database_fingerprint

        return database_fingerprint(database)

    # ------------------------------------------------------------------
    def add_transaction(self, graph: Graph) -> Set[Label]:
        """Append one transaction; returns the root labels re-mined."""
        old_fingerprint = self._fingerprint
        self.database.add(graph.copy(graph_id=len(self.database)))
        self._fingerprint = self._fingerprint_of(self.database)
        label_supports = self.database.label_supports()

        touched = set(graph.distinct_labels())
        stale: Set[Label] = set()
        frequent: Set[Label] = set()
        for label, support in label_supports.items():
            if support >= self.min_sup:
                frequent.add(label)
                if label in touched:
                    stale.add(label)
        # Untouched roots' subtrees are byte-for-byte stable (module
        # docstring), so their entries stay valid under the grown
        # database — migrate them to its fingerprint.  Touched roots'
        # entries are dropped at every cached threshold.  Roots cached
        # earlier but no longer frequent cannot exist — supports only
        # grow on append — and roots that just crossed the threshold
        # are in `touched` (their support changed by this very
        # transaction), hence re-mined.
        self.cache.rekey_database(
            old_fingerprint, self._fingerprint, drop_roots=sorted(stale)
        )
        for label in sorted(stale):
            self._remine_root(label)
        # Reused = frequent roots this append did *not* re-mine: every
        # one of them was frequent before (its support is unchanged)
        # and is served from the migrated cache entries.
        self.roots_reused += len(frequent - stale)
        return stale

    def _remine_root(self, label: Label) -> None:
        miner = ClanMiner(self.database, self.config)
        result = miner.mine(self.min_sup, root_labels=(label,))
        self.cache.store(
            self._fingerprint,
            self._config_digest,
            CachedRoot(
                root=label,
                abs_sup=self.min_sup,
                patterns=tuple(result),
                statistics=result.statistics.snapshot(),
            ),
        )
        self.roots_remined += 1

    # ------------------------------------------------------------------
    def result(self) -> MiningResult:
        """The current database's full mining result."""
        started = time.perf_counter()
        merged = MiningResult(min_sup=self.min_sup, closed_only=self.config.closed_only)
        patterns: List[CliquePattern] = []
        for root in self.database.frequent_labels(self.min_sup):
            entry = self.cache.lookup(
                self._fingerprint,
                self._config_digest,
                self.min_sup,
                root,
                allow_sweep=False,
                record=False,
            )
            if entry is None:  # pragma: no cover - shared cache cleared
                self._remine_root(root)
                entry = self.cache.lookup(
                    self._fingerprint,
                    self._config_digest,
                    self.min_sup,
                    root,
                    allow_sweep=False,
                    record=False,
                )
                assert entry is not None
            patterns.extend(entry.patterns)
        for pattern in sorted(patterns, key=lambda p: p.form.labels):
            merged.add(pattern)
        merged.elapsed_seconds = time.perf_counter() - started
        return merged

    def __len__(self) -> int:
        return len(self.database)
