"""The mining control plane: streaming progress, budgets, checkpoints.

A plain :meth:`ClanMiner.mine` call is an opaque block — fine for small
databases, unusable for the long-running dense workloads the paper
targets.  :class:`MiningSession` wraps the same DFS with the
observability and robustness shape a production service needs:

* a typed **event stream** (:class:`SearchStarted`, :class:`RootStarted`,
  :class:`PrefixVisited` (sampled), :class:`PatternEmitted`,
  :class:`SubtreePruned`, :class:`RootFinished`, :class:`SearchFinished`)
  delivered to pluggable sinks — callbacks, an in-memory ring buffer, a
  JSONL trace file, a progress printer;
* **cooperative cancellation and budgets** — a wall-clock deadline, a
  pattern cap, a prefix cap — checked at prefix boundaries, stopping the
  search with a well-defined partial result;
* **checkpoint/resume** by completed DFS roots.

The exactness guarantee rides on the property already proven for
:mod:`repro.core.executor`: under structural redundancy pruning each
pattern belongs to exactly one DFS subtree (rooted at its smallest
label), and every closure/pruning decision inside a subtree consults
only that subtree's embeddings.  The session therefore mines root by
root; when a budget or cancellation interrupts it, the subtree in
flight is discarded and the returned :class:`MiningResult` is flagged
``truncated`` with ``completed_roots`` — and is *provably equal* to a
``root_labels``-restricted mine of exactly those roots.  A checkpoint
records the completed roots and their patterns; resuming mines only the
remainder, and the union is identical to an uninterrupted mine.

Events are deterministic — they carry no wall-clock timestamps — so a
serial session and a parallel one (``processes > 1``, workers streaming
per-root heartbeats back through the pool) produce byte-identical
streams for the same database.  Parallel scheduling — including the
work-stealing executor's cost-guided root splitting — lives in
:mod:`repro.core.executor`; the session replays its per-root
substreams in canonical order, which is what keeps the contract.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, fields
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Deque,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm, Label
from .config import MinerConfig
from .embeddings import EmbeddingStore
from .engine import (
    ENGINE_TASKS,
    MiningEngine,
    engine_digest,
    engine_for_task,
    finalize_patterns,
)
from .pattern import CliquePattern
from .results import MiningResult
from .statistics import MinerStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .api import MiningRequest
    from .cache import MiningCache

__all__ = [
    "CallbackSink",
    "CancellationToken",
    "EventSink",
    "JsonlTraceSink",
    "MiningBudget",
    "MiningCheckpoint",
    "MiningEvent",
    "MiningSession",
    "PatternEmitted",
    "PrefixVisited",
    "ProgressSink",
    "RingBufferSink",
    "RootFinished",
    "RootStarted",
    "SearchAborted",
    "SearchFinished",
    "SearchHooks",
    "SearchStarted",
    "SubtreePruned",
    "event_from_dict",
    "event_to_dict",
    "iter_session_events",
]


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchStarted:
    """The session began: scope of the search and of this run."""

    kind: ClassVar[str] = "search_started"
    task: str
    min_sup: int
    n_transactions: int
    #: Every frequent root of the database, in canonical order.
    roots: Tuple[Label, ...]
    #: Roots this run will actually mine (excludes resumed ones).
    pending_roots: Tuple[Label, ...]
    #: Roots carried in finished from a resumed checkpoint.
    resumed_roots: Tuple[Label, ...]


@dataclass(frozen=True)
class RootStarted:
    """One DFS root's subtree search began."""

    kind: ClassVar[str] = "root_started"
    root: Label
    index: int
    n_pending: int


@dataclass(frozen=True)
class PrefixVisited:
    """A sampled DFS prefix (every ``sample_every``-th within a root)."""

    kind: ClassVar[str] = "prefix_visited"
    form: Tuple[Label, ...]
    support: int
    depth: int
    #: 1-based count of prefixes visited within the current root.
    ordinal: int


@dataclass(frozen=True)
class PatternEmitted:
    """A pattern was added to the result set."""

    kind: ClassVar[str] = "pattern_emitted"
    form: Tuple[Label, ...]
    support: int
    size: int


@dataclass(frozen=True)
class SubtreePruned:
    """A whole subtree was cut.

    ``reason`` names the strategy's bound: ``"nonclosed_prefix"``
    (Lemma 4.4, the clique tasks) or ``"quasi_cc_bound"`` (the
    c-closure feasibility bound, ``task="quasi"``).
    """

    kind: ClassVar[str] = "subtree_pruned"
    form: Tuple[Label, ...]
    reason: str


@dataclass(frozen=True)
class RootFinished:
    """One DFS root completed; the per-root heartbeat."""

    kind: ClassVar[str] = "root_finished"
    root: Label
    index: int
    n_pending: int
    patterns: int
    #: :meth:`MinerStatistics.snapshot` of this root's subtree only.
    statistics: Dict[str, Any]


@dataclass(frozen=True)
class SearchFinished:
    """The session ended, normally or truncated."""

    kind: ClassVar[str] = "search_finished"
    patterns: int
    truncated: bool
    #: Why the run stopped early (``"deadline"``, ``"max_patterns"``,
    #: ``"max_prefixes"``, ``"cancelled"``) or ``None`` when complete.
    reason: Optional[str]
    completed_roots: Tuple[Label, ...]


MiningEvent = Union[
    SearchStarted,
    RootStarted,
    PrefixVisited,
    PatternEmitted,
    SubtreePruned,
    RootFinished,
    SearchFinished,
]

_EVENT_TYPES: Dict[str, Type[Any]] = {
    cls.kind: cls
    for cls in (
        SearchStarted,
        RootStarted,
        PrefixVisited,
        PatternEmitted,
        SubtreePruned,
        RootFinished,
        SearchFinished,
    )
}

#: Event fields holding label tuples (JSON lists must convert back).
_TUPLE_FIELDS = {"form", "roots", "pending_roots", "resumed_roots", "completed_roots"}


def event_to_dict(event: MiningEvent) -> Dict[str, Any]:
    """Convert an event to a JSON-ready dict (``{"event": kind, ...}``)."""
    payload: Dict[str, Any] = {"event": event.kind}
    for field_ in fields(event):
        value = getattr(event, field_.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[field_.name] = value
    return payload


def event_from_dict(payload: Dict[str, Any]) -> MiningEvent:
    """Rebuild an event from :func:`event_to_dict` output."""
    kind = payload.get("event")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise MiningError(f"unknown event kind {kind!r}")
    kwargs: Dict[str, Any] = {}
    for field_ in fields(cls):
        if field_.name not in payload:
            raise MiningError(f"event {kind!r} is missing field {field_.name!r}")
        value = payload[field_.name]
        if field_.name in _TUPLE_FIELDS:
            value = tuple(value)
        elif field_.name == "statistics":
            value = dict(value)
        kwargs[field_.name] = value
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class EventSink:
    """Receives session events; subclass and override :meth:`emit`.

    Hot paths deliver events in batches through :meth:`emit_batch`;
    the default unrolls a batch into per-event :meth:`emit` calls, so
    existing sinks keep working unchanged.  Sinks with a cheap bulk
    ingest (buffers, files) override it to amortise per-event call
    overhead.
    """

    def emit(self, event: MiningEvent) -> None:
        raise NotImplementedError

    def emit_batch(self, events: Sequence[MiningEvent]) -> None:
        """Receive several events at once, oldest first."""
        for event in events:
            self.emit(event)

    def close(self) -> None:
        """Called once when the session finishes (flush/close files)."""


class CallbackSink(EventSink):
    """Forward every event to a callable."""

    def __init__(self, callback: Callable[[MiningEvent], None]) -> None:
        self.callback = callback

    def emit(self, event: MiningEvent) -> None:
        self.callback(event)


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory (``None``: keep all)."""

    def __init__(self, capacity: Optional[int] = 4096) -> None:
        self.events: Deque[MiningEvent] = deque(maxlen=capacity)

    def emit(self, event: MiningEvent) -> None:
        self.events.append(event)

    def emit_batch(self, events: Sequence[MiningEvent]) -> None:
        self.events.extend(events)

    def of_kind(self, kind: str) -> List[MiningEvent]:
        """The buffered events of one kind, oldest first."""
        return [event for event in self.events if event.kind == kind]


class JsonlTraceSink(EventSink):
    """Append one JSON object per event to a trace file.

    The format is one :func:`event_to_dict` payload per line; read it
    back with :func:`repro.io.runlog.open_trace`.
    """

    def __init__(self, path: Union[str, "object"]) -> None:
        self._stream: IO[str] = open(path, "w", encoding="utf-8")

    def emit(self, event: MiningEvent) -> None:
        json.dump(event_to_dict(event), self._stream, sort_keys=True)
        self._stream.write("\n")

    def emit_batch(self, events: Sequence[MiningEvent]) -> None:
        lines = [
            json.dumps(event_to_dict(event), sort_keys=True) + "\n"
            for event in events
        ]
        self._stream.writelines(lines)

    def close(self) -> None:
        self._stream.close()


class ProgressSink(EventSink):
    """Human-readable heartbeat lines (the CLI's ``--progress``).

    The only sink that consults a clock — rates are presentation, not
    part of the event stream, so determinism of the stream is kept.
    """

    def __init__(self, stream: Optional[IO[str]] = None, label: str = "clan") -> None:
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._started_at = time.monotonic()
        self._prefixes = 0
        self._patterns = 0

    def emit(self, event: MiningEvent) -> None:
        if isinstance(event, SearchStarted):
            self._started_at = time.monotonic()
            print(
                f"[{self.label}] mining {len(event.pending_roots)} roots "
                f"(min_sup={event.min_sup}, {event.n_transactions} transactions"
                + (
                    f", {len(event.resumed_roots)} roots resumed from checkpoint)"
                    if event.resumed_roots
                    else ")"
                ),
                file=self.stream,
            )
        elif isinstance(event, RootFinished):
            self._prefixes += int(event.statistics.get("prefixes_visited", 0))
            self._patterns += event.patterns
            elapsed = max(time.monotonic() - self._started_at, 1e-9)
            print(
                f"[{self.label}] root {event.index + 1}/{event.n_pending} "
                f"{event.root!r} done: {self._patterns} patterns, "
                f"{self._prefixes} prefixes, {self._prefixes / elapsed:.0f} prefixes/s",
                file=self.stream,
            )
        elif isinstance(event, SearchFinished):
            state = f"TRUNCATED ({event.reason})" if event.truncated else "complete"
            print(
                f"[{self.label}] search {state}: {event.patterns} patterns, "
                f"{len(event.completed_roots)} roots finished",
                file=self.stream,
            )


class _ListSink(EventSink):
    """Unbounded in-order event recorder (worker-side replay buffer)."""

    def __init__(self) -> None:
        self.events: List[MiningEvent] = []

    def emit(self, event: MiningEvent) -> None:
        self.events.append(event)

    def emit_batch(self, events: Sequence[MiningEvent]) -> None:
        self.events.extend(events)


# ----------------------------------------------------------------------
# Budgets and cancellation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MiningBudget:
    """Cooperative resource bounds, checked at prefix boundaries.

    ``deadline_seconds``
        Wall-clock limit for the run (measured from :meth:`MiningSession.
        run`).  Granularity: one DFS prefix serially, one root in
        parallel mode.
    ``max_patterns``
        Stop once this many patterns have been produced by this run.
    ``max_expanded_prefixes``
        Stop once this many DFS prefixes have been expanded by this run.

    A tripped budget never yields a wrong result — the subtree in
    flight is discarded and the partial result is exact for its
    ``completed_roots``.  Budgets count work of the *current* run only;
    resuming from a checkpoint starts fresh counters.
    """

    deadline_seconds: Optional[float] = None
    max_patterns: Optional[int] = None
    max_expanded_prefixes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("deadline_seconds", "max_patterns", "max_expanded_prefixes"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise MiningError(f"{name} must be positive when set, got {value!r}")

    @property
    def unbounded(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_patterns is None
            and self.max_expanded_prefixes is None
        )


class CancellationToken:
    """Thread-safe cooperative cancellation flag."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request the session stop at the next prefix boundary."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class SearchAborted(Exception):
    """Internal control flow: a budget/cancellation tripped mid-root.

    Raised by :class:`SearchHooks` inside the engine's search loop
    (:meth:`MiningEngine._search`), caught by :class:`MiningSession` —
    it never escapes to callers.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------------------
# The instrumentation object threaded through the DFS
# ----------------------------------------------------------------------
class SearchHooks:
    """Per-prefix instrumentation for :meth:`MiningEngine._search`.

    Designed to be near-zero-cost: the miner guards every call site
    with ``if hooks is not None``, and with no sinks, budget, or token
    each call is a couple of integer increments and ``None`` tests
    (overhead measured in ``benchmarks/test_session_overhead.py``).

    Events are not pushed to the sinks one at a time: armed hooks
    append to a pending buffer and flush it as a batch — every
    ``batch_size`` events, and always at root boundaries and on search
    aborts (the owner calls :meth:`flush` there), so each sink still
    sees the exact ordered stream.  Batching is what keeps the armed
    overhead low on emission-heavy searches: one ``emit_batch`` call
    per couple hundred events instead of a python call per sink per
    event.
    """

    __slots__ = (
        "sinks",
        "budget",
        "token",
        "sample_every",
        "deadline_at",
        "batch_size",
        "pending",
        "total_prefixes",
        "total_patterns",
        "root_prefixes",
        "root_patterns",
    )

    def __init__(
        self,
        sinks: Sequence[EventSink] = (),
        budget: Optional[MiningBudget] = None,
        token: Optional[CancellationToken] = None,
        sample_every: int = 0,
        deadline_at: Optional[float] = None,
        batch_size: int = 256,
    ) -> None:
        self.sinks = tuple(sinks)
        self.budget = budget if budget is not None and not budget.unbounded else None
        self.token = token
        self.sample_every = sample_every
        self.deadline_at = deadline_at
        self.batch_size = max(1, batch_size)
        self.pending: List[MiningEvent] = []
        self.total_prefixes = 0
        self.total_patterns = 0
        self.root_prefixes = 0
        self.root_patterns = 0

    def begin_root(self, root: Label) -> None:
        """Reset per-root counters (keeps event streams deterministic)."""
        self.flush()
        self.root_prefixes = 0
        self.root_patterns = 0

    # -- called from MiningEngine._search ------------------------------
    def enter_prefix(self, labels: Tuple[Label, ...], store: EmbeddingStore) -> None:
        """One DFS node: budget/cancellation checks plus sampling.

        ``labels`` is the bare canonical label tuple the engine's
        iterative loop carries (no :class:`CanonicalForm` exists on the
        hot path).  Hooks with no budget, token, deadline, or sampling
        are never called here at all — the engine settles
        ``total_prefixes``/``root_prefixes`` from its local node count
        at subtree boundaries instead, so dormant instrumentation pays
        nothing per node.
        """
        self.total_prefixes += 1
        self.root_prefixes += 1
        budget = self.budget
        if budget is not None:
            if self.deadline_at is not None and time.monotonic() >= self.deadline_at:
                raise SearchAborted("deadline")
            if (
                budget.max_expanded_prefixes is not None
                and self.total_prefixes > budget.max_expanded_prefixes
            ):
                raise SearchAborted("max_prefixes")
            if (
                budget.max_patterns is not None
                and self.total_patterns >= budget.max_patterns
            ):
                raise SearchAborted("max_patterns")
        if self.token is not None and self.token.cancelled:
            raise SearchAborted("cancelled")
        if self.sample_every and self.root_prefixes % self.sample_every == 0:
            self._dispatch(
                PrefixVisited(
                    form=labels,
                    support=store.support,
                    depth=len(labels),
                    ordinal=self.root_prefixes,
                )
            )

    def pattern(self, pattern: CliquePattern) -> None:
        self.total_patterns += 1
        self.root_patterns += 1
        if self.sinks:
            self._dispatch(
                PatternEmitted(
                    form=pattern.form.labels,
                    support=pattern.support,
                    size=pattern.size,
                )
            )

    def pruned(self, labels: Tuple[Label, ...], reason: str) -> None:
        if self.sinks:
            self._dispatch(SubtreePruned(form=labels, reason=reason))

    def _dispatch(self, event: MiningEvent) -> None:
        if not self.sinks:
            return
        self.pending.append(event)
        if len(self.pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Push every buffered event to the sinks, preserving order."""
        pending = self.pending
        if pending:
            batch = tuple(pending)
            pending.clear()
            for sink in self.sinks:
                sink.emit_batch(batch)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class MiningCheckpoint:
    """A resumable snapshot of a (possibly truncated) session.

    Persist with :func:`repro.io.runlog.save_checkpoint` /
    :func:`repro.io.runlog.open_checkpoint`.  The JSON payload carries
    the task, the *absolute* support, the full miner config, a
    structural database fingerprint, the completed root labels, and the
    patterns mined from those roots.  Resuming validates the
    fingerprint, support, and config before skipping any work.
    """

    task: str
    min_sup: int
    config: Dict[str, Any]
    database_fingerprint: str
    n_transactions: int
    completed_roots: Tuple[Label, ...]
    result: Dict[str, Any]
    #: ``task="topk"`` only: the k the run was started with (older
    #: checkpoints carry no ``k`` key and load as ``None``).
    k: Optional[int] = None
    #: ``task="quasi"`` only: the density the run was started with
    #: (older checkpoints carry no ``gamma`` key and load as ``None``).
    gamma: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "mining-checkpoint",
            "version": CHECKPOINT_VERSION,
            "task": self.task,
            "min_sup": self.min_sup,
            "config": dict(self.config),
            "database_fingerprint": self.database_fingerprint,
            "n_transactions": self.n_transactions,
            "completed_roots": list(self.completed_roots),
            "result": self.result,
            "k": self.k,
            "gamma": self.gamma,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MiningCheckpoint":
        if payload.get("kind") != "mining-checkpoint":
            raise MiningError(
                f"expected kind 'mining-checkpoint', got {payload.get('kind')!r}"
            )
        k = payload.get("k")
        gamma = payload.get("gamma")
        return cls(
            task=payload["task"],
            min_sup=int(payload["min_sup"]),
            config=dict(payload["config"]),
            database_fingerprint=payload["database_fingerprint"],
            n_transactions=int(payload["n_transactions"]),
            completed_roots=tuple(payload["completed_roots"]),
            result=dict(payload["result"]),
            k=int(k) if k is not None else None,
            gamma=float(gamma) if gamma is not None else None,
        )

    def patterns(self) -> MiningResult:
        """Rehydrate the patterns of the completed roots."""
        from ..io.json_format import result_from_dict

        return result_from_dict(self.result)


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
class MiningSession:
    """A controllable, observable engine-task mining run.

    Examples
    --------
    >>> from repro.graphdb import paper_example_database
    >>> session = MiningSession(paper_example_database(), min_sup=2)
    >>> sorted(p.key() for p in session.run())
    ['abcd:2', 'bde:2']

    Parameters
    ----------
    database, min_sup:
        As for :func:`repro.mine`; ``min_sup`` accepts counts,
        fractions, and ``"85%"`` strings.
    task:
        Any engine task: ``"closed"`` (default), ``"frequent"``,
        ``"maximal"``, ``"topk"`` (requires ``k``), or ``"quasi"``
        (requires ``gamma`` and a ``config`` with a finite
        ``max_size``).  All five run the same
        :class:`~repro.core.engine.MiningEngine` under a task
        strategy, so budgets, sinks, checkpoints, worker pools, and
        the cache's exact-replay tier apply uniformly.
    k:
        ``task="topk"`` only: how many of the largest closed cliques
        to keep.  Per-root candidates accumulate across roots (and
        across checkpoint/resume); the *global* k best are selected
        when the result is built.
    gamma:
        ``task="quasi"`` only: the γ density threshold in
        ``[0.5, 1.0]``.  Checkpoints record it, and resuming
        validates it the same way ``k`` is validated for top-k.
    config:
        Optional :class:`MinerConfig`; must agree with ``task`` and
        keep structural redundancy pruning on (root partitioning).
    budget:
        A :class:`MiningBudget`; ``None`` mines to completion.
    sinks:
        :class:`EventSink` instances; all are closed when the run ends.
    sample_every:
        Emit every N-th prefix of each root as :class:`PrefixVisited`
        (0, the default, disables prefix events).
    processes:
        ``> 1`` mines roots in a process pool
        (:class:`repro.core.executor.MiningExecutor`); workers stream
        per-root heartbeats (and their full event substreams) back
        through the pool, and the parent replays them in canonical
        root order, so the observable stream matches the serial one
        byte for byte.  Budgets and cancellation then act at root
        granularity.
    scheduler:
        ``"stealing"`` (default) pulls one root at a time, heaviest
        first, splitting dominant roots into their level-2 subtrees;
        ``"static"`` submits roots in canonical order with no
        splitting (the legacy behaviour).  Either way the stream and
        result are identical — the knob only changes wall-clock.
    split_factor:
        Optional override of the stealing scheduler's split threshold
        (see :data:`repro.core.executor.DEFAULT_SPLIT_FACTOR`); the
        equivalence tests force every root to split with ``0.0``.
    resume_from:
        A :class:`MiningCheckpoint`; its completed roots are loaded,
        not re-mined.
    cache:
        Optional :class:`~repro.core.cache.MiningCache`.  Roots it
        holds exact entries for (with statistics *and* an event
        substream recorded at this ``sample_every``) are replayed
        instead of mined — the emitted stream stays byte-identical to
        a cold run — and every root this session mines is stored back.
        Sessions never use the sweep tier: their events and per-root
        statistics cannot be derived by filtering.  Budgets see
        replayed roots at root granularity: a replay expands no
        prefixes and is never interrupted, but its pattern/prefix
        counts still advance the budget counters, so roots mined
        afterwards respect the budget.
    """

    def __init__(
        self,
        database: GraphDatabase,
        min_sup: Union[int, float, str],
        task: str = "closed",
        config: Optional[MinerConfig] = None,
        budget: Optional[MiningBudget] = None,
        sinks: Sequence[EventSink] = (),
        sample_every: int = 0,
        processes: int = 1,
        scheduler: str = "stealing",
        split_factor: Optional[float] = None,
        resume_from: Optional[MiningCheckpoint] = None,
        cache: Optional["MiningCache"] = None,
        k: Optional[int] = None,
        gamma: Optional[float] = None,
    ) -> None:
        if task not in ENGINE_TASKS:
            raise MiningError(
                f"MiningSession supports the engine tasks {ENGINE_TASKS}, got "
                f"{task!r}"
            )
        if task == "topk" and k is None:
            raise MiningError("task='topk' requires k=<number of patterns>")
        if task == "quasi":
            if gamma is None:
                raise MiningError(
                    "task='quasi' requires gamma=<density in [0.5, 1.0]>"
                )
            if not 0.5 <= gamma <= 1.0:
                raise MiningError(f"gamma must be in [0.5, 1.0], got {gamma}")
            if config is None or config.max_size is None:
                raise MiningError(
                    "task='quasi' requires a config with max_size (the "
                    "γ-quasi-clique feasibility and c-closure bounds need "
                    "a finite size ceiling)"
                )
        if config is None:
            config = (
                MinerConfig() if task != "frequent" else MinerConfig.all_frequent()
            )
        if config.closed_only != (task != "frequent"):
            raise MiningError(
                f"config.closed_only={config.closed_only} contradicts task {task!r}"
            )
        if not config.structural_redundancy_pruning:
            raise MiningError(
                "sessions mine root-by-root and require structural redundancy pruning"
            )
        if sample_every < 0:
            raise MiningError(f"sample_every must be >= 0, got {sample_every}")
        if processes < 1:
            raise MiningError(f"processes must be >= 1, got {processes}")
        from .executor import SCHEDULERS

        if scheduler not in SCHEDULERS:
            raise MiningError(
                f"unknown scheduler {scheduler!r}; use one of {SCHEDULERS}"
            )
        self.database = database
        self.task = task
        self.k = k
        self.gamma = gamma
        self.config = config
        self.abs_sup = database.absolute_support(min_sup)
        self.budget = budget
        self.sinks = tuple(sinks)
        self.sample_every = sample_every
        self.processes = processes
        self.scheduler = scheduler
        self.split_factor = split_factor
        self.cache = cache
        self.token = CancellationToken()
        self.result: Optional[MiningResult] = None
        self._completed: Dict[Label, List[CliquePattern]] = {}
        self._resumed_roots: Tuple[Label, ...] = ()
        self._statistics = MinerStatistics()
        self._ran = False
        if resume_from is not None:
            self._load_checkpoint(resume_from)

    # ------------------------------------------------------------------
    @classmethod
    def from_request(
        cls,
        database: GraphDatabase,
        request: "MiningRequest",
        *,
        sinks: Sequence[EventSink] = (),
        resume_from: Optional[MiningCheckpoint] = None,
        cache: Optional["MiningCache"] = None,
        budget: Optional[MiningBudget] = None,
        split_factor: Optional[float] = None,
    ) -> "MiningSession":
        """Build a session from a :class:`~repro.core.api.MiningRequest`.

        The request describes the run (task, support, config, budget,
        execution options); ``sinks``/``resume_from``/``cache`` are the
        runtime attachments that cannot ride on the wire.  ``budget``
        overrides the request's own budget when given — the service
        uses this to impose a default per-job SLO on requests that did
        not set one.  Checkpoints taken mid-run (e.g. from a
        ``RootFinished`` sink) are consistent: the completed-roots map
        is updated before the heartbeat event is emitted.
        """
        return cls(
            database,
            request.min_sup,
            task=request.task,
            config=request.resolved_config(),
            budget=budget if budget is not None else request.budget,
            sinks=sinks,
            sample_every=request.sample_every,
            processes=request.processes,
            scheduler=request.scheduler,
            split_factor=split_factor,
            resume_from=resume_from,
            cache=cache if request.use_cache else None,
            k=request.k,
            gamma=request.gamma,
        )

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request a cooperative stop (thread-safe, idempotent)."""
        self.token.cancel()

    @property
    def completed_roots(self) -> Tuple[Label, ...]:
        """Roots whose subtrees are fully mined so far, sorted."""
        return tuple(sorted(self._completed))

    # ------------------------------------------------------------------
    def run(self) -> MiningResult:
        """Execute the search; single-use.

        Returns the full :class:`MiningResult`, or a partial one with
        ``truncated=True`` when a budget tripped or :meth:`cancel` was
        called.  All sinks are closed before returning.
        """
        if self._ran:
            raise MiningError("a MiningSession runs once; create a new one to re-mine")
        self._ran = True
        started = time.perf_counter()
        deadline_at = None
        if self.budget is not None and self.budget.deadline_seconds is not None:
            deadline_at = time.monotonic() + self.budget.deadline_seconds

        roots = tuple(self.database.frequent_labels(self.abs_sup))
        pending = tuple(root for root in roots if root not in self._completed)
        self._emit(
            SearchStarted(
                task=self.task,
                min_sup=self.abs_sup,
                n_transactions=len(self.database),
                roots=roots,
                pending_roots=pending,
                resumed_roots=self._resumed_roots,
            )
        )
        try:
            if self.processes > 1:
                reason = self._run_parallel(pending, deadline_at)
            else:
                reason = self._run_serial(pending, deadline_at)
            result = self._build_result(reason, started)
            self._emit(
                SearchFinished(
                    patterns=len(result),
                    truncated=result.truncated,
                    reason=reason,
                    completed_roots=result.completed_roots,
                )
            )
        finally:
            for sink in self.sinks:
                sink.close()
        self.result = result
        return result

    # ------------------------------------------------------------------
    def _run_serial(
        self, pending: Tuple[Label, ...], deadline_at: Optional[float]
    ) -> Optional[str]:
        fingerprint = config_digest = ""
        if self.cache is not None:
            from ..io.runlog import database_fingerprint

            fingerprint = database_fingerprint(self.database)
            config_digest = engine_digest(self.task, self.config, self.k, self.gamma)
        miner: Optional[MiningEngine] = None
        hooks = SearchHooks(
            sinks=self.sinks,
            budget=self.budget,
            token=self.token,
            sample_every=self.sample_every,
            deadline_at=deadline_at,
        )
        for index, root in enumerate(pending):
            self._emit(RootStarted(root=root, index=index, n_pending=len(pending)))
            hooks.begin_root(root)
            if self.cache is not None:
                entry = self.cache.lookup(
                    fingerprint,
                    config_digest,
                    self.abs_sup,
                    root,
                    need_statistics=True,
                    need_events=True,
                    sample_every=self.sample_every,
                    allow_sweep=False,
                )
                if entry is not None:
                    # Replay: the stored substream is exactly what a
                    # cold mine of this root would have emitted.
                    self._emit_batch(tuple(entry.events or ()))
                    part = entry.result(self.config.closed_only)
                    # Budgets are enforced lazily at the next expanded
                    # prefix; advancing the run-wide counters here makes
                    # later *mined* roots trip as if this one had been
                    # mined too.
                    hooks.total_prefixes += part.statistics.prefixes_visited
                    hooks.total_patterns += len(part)
                    self._statistics.roots_from_cache += 1
                    self._statistics.cache_hits += 1
                    self._finish_root(root, index, len(pending), part)
                    continue
                self._statistics.cache_misses += 1
            if miner is None:
                miner = engine_for_task(
                    self.database, self.config, self.task, self.k, self.gamma
                ).prepare()
            recorder: Optional[_ListSink] = None
            if self.cache is not None:
                recorder = _ListSink()
                hooks.sinks = self.sinks + (recorder,)
            try:
                part = miner.mine(self.abs_sup, root_labels=(root,), hooks=hooks)
            except SearchAborted as stop:
                return stop.reason
            finally:
                # Drain the hook buffer while the recorder (if any) is
                # still wired in — aborted searches included — so both
                # the live sinks and the cache see the full substream.
                hooks.flush()
                if recorder is not None:
                    hooks.sinks = self.sinks
            if self.cache is not None and recorder is not None:
                from .cache import CachedRoot

                self.cache.store(
                    fingerprint,
                    config_digest,
                    CachedRoot(
                        root=root,
                        abs_sup=self.abs_sup,
                        patterns=tuple(part),
                        statistics=part.statistics.snapshot(),
                        events=tuple(recorder.events),
                        events_sample_every=self.sample_every,
                    ),
                )
            self._finish_root(root, index, len(pending), part)
        return None

    def _run_parallel(
        self, pending: Tuple[Label, ...], deadline_at: Optional[float]
    ) -> Optional[str]:
        if not pending:
            return None
        from .executor import STATIC, MiningExecutor

        budget = self.budget
        produced = 0
        expanded = 0
        processes = self.processes
        if self.scheduler == STATIC:
            # No splitting under static, so extra workers would idle.
            processes = min(processes, len(pending))
        executor_options = {}
        if self.split_factor is not None:
            executor_options["split_factor"] = self.split_factor
        executor = MiningExecutor(
            self.database,
            self.config,
            processes=processes,
            scheduler=self.scheduler,
            cache=self.cache,
            task=self.task,
            k=self.k,
            gamma=self.gamma,
            **executor_options,
        )
        try:
            arrivals = executor.iter_roots(
                self.abs_sup,
                pending,
                sample_every=self.sample_every,
                capture_events=True,
            )
            for index, (root, part, events) in enumerate(arrivals):
                self._emit(RootStarted(root=root, index=index, n_pending=len(pending)))
                self._emit_batch(events)
                self._finish_root(root, index, len(pending), part)
                produced += len(part)
                expanded += part.statistics.prefixes_visited
                if self.token.cancelled:
                    return "cancelled"
                if budget is not None:
                    if deadline_at is not None and time.monotonic() >= deadline_at:
                        return "deadline"
                    if (
                        budget.max_patterns is not None
                        and produced >= budget.max_patterns
                        and index + 1 < len(pending)
                    ):
                        return "max_patterns"
                    if (
                        budget.max_expanded_prefixes is not None
                        and expanded >= budget.max_expanded_prefixes
                        and index + 1 < len(pending)
                    ):
                        return "max_prefixes"
        finally:
            report = executor.last_report
            if self.cache is not None and report is not None:
                hits = report.roots_from_cache
                self._statistics.roots_from_cache += hits
                self._statistics.cache_hits += hits
                self._statistics.cache_misses += len(pending) - hits
            executor.close()
        return None

    def _finish_root(
        self, root: Label, index: int, n_pending: int, part: MiningResult
    ) -> None:
        self._completed[root] = list(part)
        self._statistics.merge(part.statistics)
        self._emit(
            RootFinished(
                root=root,
                index=index,
                n_pending=n_pending,
                patterns=len(part),
                statistics=part.statistics.snapshot(),
            )
        )

    def _build_result(self, reason: Optional[str], started: float) -> MiningResult:
        result = MiningResult(
            min_sup=self.abs_sup,
            closed_only=self.config.closed_only,
            statistics=self._statistics,
            truncated=reason is not None,
            completed_roots=self.completed_roots,
        )
        collected: List[CliquePattern] = []
        for patterns in self._completed.values():
            collected.extend(patterns)
        for pattern in finalize_patterns(self.task, collected, self.k):
            result.add(pattern)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _emit(self, event: MiningEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def _emit_batch(self, events: Sequence[MiningEvent]) -> None:
        """Forward a pre-ordered event batch (cache replay, workers)."""
        if events:
            for sink in self.sinks:
                sink.emit_batch(events)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> MiningCheckpoint:
        """Snapshot the completed roots for a later resume.

        Valid after :meth:`run` (truncated or not) — and also before it
        on a freshly resumed session.  Patterns of the subtree that was
        interrupted mid-flight are *not* included; that root re-mines
        on resume.
        """
        from ..io.json_format import result_to_dict
        from ..io.runlog import database_fingerprint

        interim = MiningResult(
            min_sup=self.abs_sup, closed_only=self.config.closed_only
        )
        collected: List[CliquePattern] = []
        for patterns in self._completed.values():
            collected.extend(patterns)
        for pattern in sorted(collected, key=lambda p: p.form.labels):
            interim.add(pattern)
        return MiningCheckpoint(
            task=self.task,
            min_sup=self.abs_sup,
            config=self.config.to_dict(),
            database_fingerprint=database_fingerprint(self.database),
            n_transactions=len(self.database),
            completed_roots=self.completed_roots,
            result=result_to_dict(interim),
            k=self.k,
            gamma=self.gamma,
        )

    def _load_checkpoint(self, checkpoint: MiningCheckpoint) -> None:
        from ..io.runlog import database_fingerprint

        if checkpoint.task != self.task:
            raise MiningError(
                f"checkpoint task {checkpoint.task!r} does not match {self.task!r}"
            )
        if checkpoint.k != self.k:
            raise MiningError(
                f"checkpoint k={checkpoint.k!r} does not match this "
                f"session's k={self.k!r}"
            )
        if checkpoint.gamma != self.gamma:
            raise MiningError(
                f"checkpoint gamma={checkpoint.gamma!r} does not match this "
                f"session's gamma={self.gamma!r}"
            )
        if checkpoint.min_sup != self.abs_sup:
            raise MiningError(
                f"checkpoint min_sup {checkpoint.min_sup} does not match "
                f"this session's absolute support {self.abs_sup}"
            )
        if checkpoint.config != self.config.to_dict():
            raise MiningError(
                "checkpoint was mined under a different MinerConfig; "
                "resume with the same configuration"
            )
        fingerprint = database_fingerprint(self.database)
        if checkpoint.database_fingerprint != fingerprint:
            raise MiningError(
                "checkpoint database fingerprint does not match this database "
                "(the input changed since the checkpoint was written)"
            )
        grouped: Dict[Label, List[CliquePattern]] = {
            root: [] for root in checkpoint.completed_roots
        }
        for pattern in checkpoint.patterns():
            root = pattern.form.labels[0]
            if root not in grouped:  # pragma: no cover - corrupt checkpoint
                raise MiningError(
                    f"checkpoint pattern {pattern.key()} belongs to root "
                    f"{root!r} which is not marked completed"
                )
            grouped[root].append(pattern)
        self._completed = grouped
        self._resumed_roots = tuple(sorted(grouped))


def iter_session_events(
    database: GraphDatabase,
    min_sup: Union[int, float, str],
    **session_options: Any,
) -> Iterable[MiningEvent]:
    """Convenience generator: run a session, yielding events in order.

    Buffers via an unbounded ring; for true streaming into your own
    machinery, pass a :class:`CallbackSink` to :class:`MiningSession`.
    """
    ring = RingBufferSink(capacity=None)
    sinks = tuple(session_options.pop("sinks", ())) + (ring,)
    session = MiningSession(database, min_sup, sinks=sinks, **session_options)
    session.run()
    return list(ring.events)
