"""Result sets of a mining run.

Holds the reported patterns, keeps them queryable by canonical form and
by size (the series of Figure 6(b) is ``size_histogram``), and derives
the quantities the paper reports: the maximum clique pattern (Figure 5)
and the closed → all-frequent expansion (Section 1 argues closed sets
retain completeness; :meth:`MiningResult.expand_to_frequent` realises
that derivation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import PatternError
from .canonical import CanonicalForm, Label
from .pattern import CliquePattern
from .statistics import MinerStatistics


class MiningResult:
    """An ordered, indexed collection of mined clique patterns."""

    __slots__ = (
        "_patterns",
        "_by_form",
        "min_sup",
        "closed_only",
        "elapsed_seconds",
        "statistics",
        "truncated",
        "completed_roots",
    )

    def __init__(
        self,
        patterns: Iterable[CliquePattern] = (),
        min_sup: int = 1,
        closed_only: bool = True,
        elapsed_seconds: float = 0.0,
        statistics: Optional[MinerStatistics] = None,
        truncated: bool = False,
        completed_roots: Optional[Tuple[Label, ...]] = None,
    ) -> None:
        self._patterns: List[CliquePattern] = []
        self._by_form: Dict[CanonicalForm, CliquePattern] = {}
        self.min_sup = min_sup
        self.closed_only = closed_only
        self.elapsed_seconds = elapsed_seconds
        self.statistics = statistics if statistics is not None else MinerStatistics()
        #: True when a budget or cancellation stopped the search early.
        #: A truncated result is still exact for ``completed_roots``: it
        #: equals a ``root_labels``-restricted mine of those roots.
        self.truncated = truncated
        #: DFS root labels whose subtrees were fully mined, or ``None``
        #: for runs that did not track roots (the plain miner).
        self.completed_roots = completed_roots
        for pattern in patterns:
            self.add(pattern)

    # ------------------------------------------------------------------
    # Collection maintenance
    # ------------------------------------------------------------------
    def add(self, pattern: CliquePattern) -> None:
        """Add a pattern; duplicate canonical forms are rejected."""
        if pattern.form in self._by_form:
            raise PatternError(f"duplicate pattern {pattern.key()} in result set")
        self._patterns.append(pattern)
        self._by_form[pattern.form] = pattern

    def sorted_by_form(self) -> List[CliquePattern]:
        """Patterns in global canonical-form order (the DFS order)."""
        return sorted(self._patterns, key=lambda p: p.form.labels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, form: CanonicalForm) -> Optional[CliquePattern]:
        """Look a pattern up by canonical form."""
        return self._by_form.get(form)

    def __contains__(self, form: object) -> bool:
        return form in self._by_form

    def forms(self) -> List[CanonicalForm]:
        """All canonical forms, in insertion (enumeration) order."""
        return [p.form for p in self._patterns]

    def keys(self) -> List[str]:
        """The ``form:support`` keys of all patterns, in insertion order."""
        return [p.key() for p in self._patterns]

    def of_size(self, size: int) -> List[CliquePattern]:
        """Patterns with exactly ``size`` vertices."""
        return [p for p in self._patterns if p.size == size]

    def at_least_size(self, size: int) -> List[CliquePattern]:
        """Patterns with at least ``size`` vertices (paper reports ≥ 3)."""
        return [p for p in self._patterns if p.size >= size]

    def size_histogram(self) -> Dict[int, int]:
        """Number of patterns per clique size — the Figure 6(b) series."""
        histogram: Dict[int, int] = {}
        for pattern in self._patterns:
            histogram[pattern.size] = histogram.get(pattern.size, 0) + 1
        return dict(sorted(histogram.items()))

    def max_size(self) -> int:
        """Largest pattern size (0 if empty)."""
        return max((p.size for p in self._patterns), default=0)

    def maximum_patterns(self) -> List[CliquePattern]:
        """All patterns of maximum size — Figure 5's headline result."""
        top = self.max_size()
        return [] if top == 0 else self.of_size(top)

    def supersets_of(self, form: CanonicalForm) -> Iterator[CliquePattern]:
        """Patterns whose form properly contains ``form``."""
        for pattern in self._patterns:
            if form.is_proper_subclique_of(pattern.form):
                yield pattern

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def expand_to_frequent(self) -> "MiningResult":
        """Derive the complete frequent set from a closed result set.

        Every frequent clique is a subclique of some closed clique with
        support equal to the *maximum* support among its closed
        supercliques (the completeness argument of Section 1).  Only
        valid when this result set is closed and unfiltered by size.
        """
        derived: Dict[Tuple[Label, ...], int] = {}
        for pattern in self._patterns:
            for labels in _sub_multisets(pattern.labels):
                if derived.get(labels, 0) < pattern.support:
                    derived[labels] = pattern.support
        expanded = MiningResult(
            min_sup=self.min_sup, closed_only=False, elapsed_seconds=self.elapsed_seconds
        )
        for labels in sorted(derived):
            expanded.add(
                CliquePattern(
                    form=CanonicalForm(labels),
                    support=derived[labels],
                )
            )
        return expanded

    def filter_support(self, min_support: int) -> "MiningResult":
        """Restrict this result to patterns with support ≥ ``min_support``.

        For a complete closed (or all-frequent) result mined at
        threshold ``s``, this *is* the result of re-mining at any
        ``t ≥ s``: support does not depend on the threshold, and by
        Lemma 4.3 closedness is threshold-independent too — a clique is
        non-closed iff some superclique ties its support, and that
        superclique is then frequent whenever the clique is.  This
        exactness is what the sweep tier of
        :class:`repro.core.cache.MiningCache` rests on; it is
        property-tested against fresh mines and the brute-force oracle
        in ``tests/test_cache.py``.

        Patterns are shared (not copied) and keep their enumeration
        order; statistics are *not* carried over — they describe the
        original search, not the hypothetical re-mine.
        """
        if min_support < self.min_sup:
            raise PatternError(
                f"cannot filter down to min_support {min_support}: this result "
                f"was mined at {self.min_sup} and lower-support patterns were "
                f"never enumerated"
            )
        filtered = MiningResult(
            min_sup=min_support,
            closed_only=self.closed_only,
            elapsed_seconds=self.elapsed_seconds,
        )
        for pattern in self._patterns:
            if pattern.support >= min_support:
                filtered.add(pattern)
        return filtered

    def closed_subset(self) -> "MiningResult":
        """Filter an all-frequent result down to its closed patterns."""
        closed = MiningResult(
            min_sup=self.min_sup, closed_only=True, elapsed_seconds=self.elapsed_seconds
        )
        for pattern in self.sorted_by_form():
            if not any(pattern.makes_nonclosed(other) for other in self._patterns):
                closed.add(pattern)
        return closed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, min_size: int = 1, limit: Optional[int] = None) -> str:
        """Multi-line text report of the patterns (largest first)."""
        chosen = sorted(
            self.at_least_size(min_size), key=lambda p: (-p.size, p.form.labels)
        )
        if limit is not None:
            chosen = chosen[:limit]
        kind = "closed " if self.closed_only else ""
        lines = [
            f"{len(self._patterns)} frequent {kind}cliques "
            f"(min_sup={self.min_sup}, {self.elapsed_seconds:.3f}s)"
        ]
        lines.extend(f"  {p.key()}" for p in chosen)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[CliquePattern]:
        return iter(self._patterns)

    def __repr__(self) -> str:
        kind = "closed" if self.closed_only else "frequent"
        cut = " truncated" if self.truncated else ""
        return (
            f"<MiningResult {len(self._patterns)} {kind} patterns "
            f"min_sup={self.min_sup}{cut}>"
        )


def _sub_multisets(labels: Tuple[Label, ...]) -> Iterator[Tuple[Label, ...]]:
    """All non-empty sub-multisets of a sorted label tuple, each once."""
    distinct: List[Label] = []
    counts: List[int] = []
    for label in labels:
        if distinct and distinct[-1] == label:
            counts[-1] += 1
        else:
            distinct.append(label)
            counts.append(1)

    def build(index: int, acc: Tuple[Label, ...]) -> Iterator[Tuple[Label, ...]]:
        if index == len(distinct):
            if acc:
                yield acc
            return
        for multiplicity in range(counts[index] + 1):
            yield from build(index + 1, acc + (distinct[index],) * multiplicity)

    yield from build(0, ())
