"""Clique patterns: a canonical form together with its support evidence.

A :class:`CliquePattern` is what the miner reports: the canonical form
(Definition 4.1), the absolute support ``sup^D(C)`` (Section 2), the
ids of the supporting transactions, and optionally one witness
embedding per transaction so results can be traced back to concrete
vertices (as Figure 5 does for the 12-stock clique).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..exceptions import PatternError
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm, Label


@dataclass(frozen=True, slots=True)
class CliquePattern:
    """A frequent (possibly closed) clique pattern.

    Attributes
    ----------
    form:
        The canonical form (sorted label sequence).
    support:
        Absolute support — the number of supporting transactions.
    transactions:
        Sorted tuple of supporting transaction ids.
    witnesses:
        Optional map from transaction id to one embedding (a sorted
        vertex-id tuple) witnessing the pattern in that transaction.
    """

    form: CanonicalForm
    support: int
    transactions: Tuple[int, ...] = ()
    witnesses: Mapping[int, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.support < 0:
            raise PatternError(f"support must be non-negative, got {self.support}")
        if self.transactions and len(self.transactions) != self.support:
            raise PatternError(
                f"support {self.support} disagrees with "
                f"{len(self.transactions)} listed transactions"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Clique size (number of vertices)."""
        return self.form.size

    @property
    def labels(self) -> Tuple[Label, ...]:
        """The sorted label tuple of the canonical form."""
        return self.form.labels

    def relative_support(self, database_size: int) -> float:
        """Support as a fraction of the database size."""
        if database_size <= 0:
            raise PatternError("database size must be positive")
        return self.support / database_size

    def key(self) -> str:
        """The paper's ``canonical form:support`` node label (Figure 4)."""
        return f"{self.form}:{self.support}"

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------
    def is_subpattern_of(self, other: "CliquePattern") -> bool:
        """Subclique relationship on the canonical forms (Lemma 4.1)."""
        return self.form.is_subclique_of(other.form)

    def makes_nonclosed(self, other: "CliquePattern") -> bool:
        """Return whether ``other`` proves this pattern non-closed.

        True iff ``other`` is a proper superclique with the same
        support (the definition of closedness in Section 2).
        """
        return (
            other.support == self.support
            and self.form.is_proper_subclique_of(other.form)
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, database: GraphDatabase) -> None:
        """Re-check every witness embedding against the database.

        Raises :class:`PatternError` on the first inconsistency; a
        no-op for patterns without witnesses.  Used by tests and by
        result post-processing as an end-to-end sanity net.
        """
        for tid in self.transactions:
            witness = self.witnesses.get(tid)
            if witness is None:
                continue
            graph = database[tid]
            if len(witness) != self.size:
                raise PatternError(
                    f"witness {witness!r} in transaction {tid} has wrong size "
                    f"for pattern {self.key()}"
                )
            if len(set(witness)) != len(witness):
                raise PatternError(f"witness {witness!r} repeats vertices")
            if graph.label_multiset(witness) != self.labels:
                raise PatternError(
                    f"witness {witness!r} in transaction {tid} has labels "
                    f"{graph.label_multiset(witness)!r}, expected {self.labels!r}"
                )
            if not graph.is_clique(witness):
                raise PatternError(
                    f"witness {witness!r} in transaction {tid} is not a clique"
                )

    def __str__(self) -> str:
        return self.key()


def make_pattern(
    labels: Iterable[Label],
    support: int,
    transactions: Iterable[int] = (),
    witnesses: Optional[Dict[int, Tuple[int, ...]]] = None,
) -> CliquePattern:
    """Convenience constructor sorting labels and transactions."""
    return CliquePattern(
        form=CanonicalForm.from_labels(labels),
        support=support,
        transactions=tuple(sorted(transactions)),
        witnesses=dict(witnesses or {}),
    )
