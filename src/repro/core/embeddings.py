"""Embedding bookkeeping for prefix cliques.

An *embedding* of a clique pattern C in a transaction G is a set of
pairwise-adjacent vertices whose sorted labels equal C's canonical
form (Section 2).  CLAN's recursion carries, for the current prefix
clique, its embeddings in every supporting transaction; this module
owns that state and the three scans of Algorithm 1:

* finding the support of every single-label extension (lines 01–03),
* the non-closed prefix pruning test of Lemma 4.4 (lines 04–05),
* materialising the embeddings of ``C ◇ l`` for a chosen extension
  label (line 09).

Two candidate-generation strategies are provided:

``cached``
    Each embedding carries its *extension-vertex set* (the common
    neighbourhood of its vertices, the ``V_i`` of Section 4.3), updated
    incrementally by one intersection per extension.  This is the
    default and by far the fastest in Python.

``rescan``
    Embeddings store only vertex tuples; extension vertices are
    re-derived per scan by checking the vertices of the *pseudo
    database* (the low-degree-pruned vertex index of Section 4.2)
    against the embedding.  This is the paper's literal procedure and
    exists so the pseudo low-degree pruning ablation measures what the
    paper's design actually saves.

Orthogonally to the strategy, two *kernels* implement the set algebra:

``bitset`` (default)
    Vertex sets are arbitrary-precision integer bitmasks over the
    graph's sorted-vertex-id bit order
    (:meth:`repro.graphdb.graph.Graph.bit_index`).  Intersections are
    single ``&`` operations, the pseudo-database survivor index is
    ANDed in as a mask, and per-transaction extension labels are read
    off the union mask's set bits.

``set``
    The original hashed ``set`` implementation, kept for ablation and
    as the differential-testing reference.

``slab``
    Numpy ``uint64`` slab arrays with vectorized ``&``/``|``/popcount,
    transposed so one array row holds a label's supporting-transaction
    mask (:mod:`repro.core.slab_store`).  Engaged when the database has
    an aligned label space and the strategy is ``cached``; otherwise it
    transparently falls back to the int-mask representation.

All kernels enumerate embeddings in identical order (ascending vertex
id within each label group) and produce identical results.

Embeddings with equal labels are generated with vertex ids ascending
inside each label group, so every vertex *set* is enumerated exactly
once even though label multisets are not sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..exceptions import MiningError
from ..graphdb.bitset import iter_bits, lowest_bit, popcount
from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from .canonical import Label
from .closure import fully_connected_old_labels, fully_connected_old_labels_mask

#: One embedding: its vertex tuple (in canonical label order) and, in
#: ``cached`` mode, its extension-vertex set — a ``set`` of vertex ids
#: under the ``set`` kernel, an ``int`` bitmask under ``bitset``.
EmbeddingRecord = Tuple[Tuple[int, ...], Union[Set[int], int, None]]

CACHED = "cached"
RESCAN = "rescan"
_STRATEGIES = (CACHED, RESCAN)

SET = "set"
BITSET = "bitset"
SLAB = "slab"
_KERNELS = (SET, BITSET, SLAB)

# Sentinel: "look the aligned space up from the database" (``None`` is
# a valid explicit value, meaning "no aligned space").
_SPACE_LOOKUP = object()


class EmbeddingStore:
    """Embeddings of one prefix clique across all supporting transactions."""

    __slots__ = (
        "database",
        "pseudo",
        "strategy",
        "kernel",
        "size",
        "by_transaction",
        "space",
        "_ties",
    )

    def __init__(
        self,
        database: GraphDatabase,
        pseudo: Optional[PseudoDatabase],
        strategy: str,
        size: int,
        by_transaction: Dict[int, List[EmbeddingRecord]],
        kernel: str = BITSET,
        space: object = _SPACE_LOOKUP,
    ) -> None:
        """``pseudo=None`` disables low-degree pruning in ``rescan`` mode.

        ``space`` is internal plumbing: derived stores (``extend`` and
        friends) hand their own aligned label space down so the
        database-level lookup-and-validate happens once per mining
        call, not once per prefix.
        """
        if strategy not in _STRATEGIES:
            raise MiningError(f"unknown embedding strategy {strategy!r}; use one of {_STRATEGIES}")
        if kernel not in _KERNELS:
            raise MiningError(f"unknown kernel {kernel!r}; use one of {_KERNELS}")
        if kernel == SLAB:
            # This class is the slab kernel's int-mask *fallback* (and
            # the target its record-level delegations materialise to);
            # the slab fast path lives in
            # :class:`repro.core.slab_store.SlabEmbeddingStore`.
            kernel = BITSET
        self.database = database
        self.pseudo = pseudo
        self.strategy = strategy
        self.kernel = kernel
        self.size = size
        self.by_transaction = by_transaction
        # Aligned label space (unique-label databases only): masks live
        # in the database-global label bit order instead of per-graph
        # vertex bit order, enabling bit-sliced support counting.
        if space is _SPACE_LOOKUP:
            space = database.aligned_space() if kernel == BITSET else None
        self.space = space
        # Tie cache: labels whose extension support equals the prefix
        # support, recorded by the last extension_plan() call.  A
        # Lemma 4.4 blocking label necessarily ties the support, so
        # the nonclosed scan restricts itself to this set when known.
        self._ties: Optional[Union[Set[Label], int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_label(
        cls,
        database: GraphDatabase,
        pseudo: Optional[PseudoDatabase],
        label: Label,
        strategy: str = CACHED,
        kernel: str = BITSET,
        context: Optional[dict] = None,
    ) -> "EmbeddingStore":
        """Embeddings of the 1-clique with the given label.

        ``kernel="slab"`` dispatches to the transposed
        :class:`~repro.core.slab_store.SlabEmbeddingStore` when the
        database has a slab space and the strategy is ``cached``;
        otherwise it falls back to the int-mask bitset representation
        (byte-identical results either way).  ``context`` is the
        engine's per-mine-call scratch dict — the slab kernel shares
        its level-batched forest through it; the int-mask kernels
        ignore it.
        """
        if strategy not in _STRATEGIES:
            raise MiningError(f"unknown embedding strategy {strategy!r}; use one of {_STRATEGIES}")
        if kernel not in _KERNELS:
            raise MiningError(f"unknown kernel {kernel!r}; use one of {_KERNELS}")
        if kernel == SLAB:
            if strategy == CACHED:
                # One staleness-checked space resolution per mine call:
                # the engine's context dict caches it across the call's
                # roots (fresh per call, so mutations between calls are
                # still observed).
                if context is not None and "slab_space" in context:
                    slab = context["slab_space"]
                else:
                    slab = database.slab_space()
                    if context is not None:
                        context["slab_space"] = slab
                if slab is not None:
                    from .slab_store import SlabEmbeddingStore

                    return SlabEmbeddingStore.for_root(
                        database, pseudo, label, slab, context
                    )
            kernel = BITSET
        bitset = kernel == BITSET
        if not bitset:
            space = None
        elif context is not None and "aligned_space" in context:
            space = context["aligned_space"]
        else:
            space = database.aligned_space()
            if context is not None:
                context["aligned_space"] = space
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, graph in enumerate(database):
            records: List[EmbeddingRecord] = []
            for vertex in sorted(graph.vertices_with_label(label)):
                if strategy == CACHED:
                    if space is not None:
                        cached: Union[Set[int], int] = space.views[tid].neighbor_masks[vertex]
                    elif bitset:
                        cached = graph.neighbor_mask(vertex)
                    else:
                        cached = set(graph.neighbors(vertex))
                    records.append(((vertex,), cached))
                else:
                    records.append(((vertex,), None))
            if records:
                by_transaction[tid] = records
        return cls(database, pseudo, strategy, 1, by_transaction, kernel, space)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def support(self) -> int:
        """Number of transactions with at least one embedding."""
        return len(self.by_transaction)

    @property
    def embedding_count(self) -> int:
        """Total embeddings across all transactions."""
        return sum(map(len, self.by_transaction.values()))

    def transactions(self) -> Tuple[int, ...]:
        """Supporting transaction ids, sorted."""
        return tuple(sorted(self.by_transaction))

    def witnesses(self) -> Dict[int, Tuple[int, ...]]:
        """One witness embedding (sorted vertex tuple) per transaction.

        The lexicographically smallest embedding is chosen so the
        reported witness is deterministic and identical across kernels
        and embedding strategies.
        """
        witnesses: Dict[int, Tuple[int, ...]] = {}
        for tid, records in self.by_transaction.items():
            if len(records) == 1:
                witnesses[tid] = tuple(sorted(records[0][0]))
            else:
                witnesses[tid] = min(tuple(sorted(vertices)) for vertices, _ in records)
        return witnesses

    def iter_embeddings(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(transaction id, vertex tuple)`` for every embedding."""
        for tid, records in self.by_transaction.items():
            for vertices, _ in records:
                yield tid, vertices

    # ------------------------------------------------------------------
    # Candidate (extension-vertex) computation
    # ------------------------------------------------------------------
    def _candidates(self, tid: int, record: EmbeddingRecord) -> Set[int]:
        """The extension-vertex set ``V_i`` of one embedding, as a set.

        Kernel-independent accessor (under the bitset kernel the mask
        is expanded to vertex ids); external consumers such as the
        top-k miner use it, while the hot paths below stay in whichever
        representation the kernel dictates.
        """
        if self.kernel == BITSET:
            mask = self._candidates_mask(tid, record)
            if self.space is not None:
                return set(self.space.views[tid].vertices_of(mask))
            return set(self.database[tid].vertices_from_mask(mask))
        vertices, cached = record
        if cached is not None:
            return cached
        # Paper-literal scan: walk the low-degree-pruned vertex index for
        # the next clique size and keep vertices adjacent to the whole
        # embedding.  (Observation 4.1: a vertex of a (k+1)-clique has
        # core number >= k, i.e. survives pruning at level k+1.)
        graph = self.database[tid]
        if self.pseudo is not None:
            usable: Iterable[int] = self.pseudo.index(tid).usable_at(self.size + 1)
        else:
            usable = graph.vertices()
        members = set(vertices)
        candidates: Set[int] = set()
        for vertex in usable:
            if vertex in members:
                continue
            neighbors = graph.neighbors(vertex)
            if all(u in neighbors for u in vertices):
                candidates.add(vertex)
        return candidates

    def _candidates_mask(self, tid: int, record: EmbeddingRecord) -> int:
        """The extension-vertex set of one embedding, as a bitmask.

        In ``rescan`` mode the pseudo-database pruning of Observation
        4.1 becomes one AND with the level's surviving-vertex mask, and
        "adjacent to the whole embedding" is the AND of the members'
        neighbour masks (each member is absent from its own mask, so
        members need no explicit exclusion).
        """
        vertices, cached = record
        if cached is not None:
            return cached  # type: ignore[return-value]
        space = self.space
        if space is not None:
            view = space.views[tid]
            if self.pseudo is not None:
                mask = view.usable_mask_at(self.pseudo.index(tid), self.size + 1)
            else:
                mask = view.present_mask
            neighbor_masks = view.neighbor_masks
        else:
            graph = self.database[tid]
            index = graph.bit_index()
            if self.pseudo is not None:
                mask = self.pseudo.index(tid).usable_mask_at(self.size + 1)
            else:
                mask = index.all_mask
            neighbor_masks = index.neighbor_masks
        for vertex in vertices:
            mask &= neighbor_masks[vertex]
            if not mask:
                break
        return mask

    # ------------------------------------------------------------------
    # Scans of Algorithm 1
    # ------------------------------------------------------------------
    def extension_supports(self) -> Dict[Label, int]:
        """Support of ``C ◇ β`` for every extension label β.

        A transaction supports ``C ◇ β`` iff some embedding of C in it
        has an extension vertex labeled β; this covers both *new*
        (β ≥ last label) and *old* (β < last label) extension vertices,
        which is exactly what the closure check of Lemma 4.3 needs.
        """
        if self.kernel == BITSET:
            if self.space is not None:
                return self._extension_supports_aligned()
            return self._extension_supports_mask()
        supports: Dict[Label, int] = {}
        for tid, records in self.by_transaction.items():
            get_label = self.database[tid].label_map().__getitem__
            seen: Set[Label] = set()
            for record in records:
                seen.update(map(get_label, self._candidates(tid, record)))
            for label in seen:
                supports[label] = supports.get(label, 0) + 1
        return supports

    def _extension_slices(self) -> List[int]:
        """Carry-save counter of extension labels across transactions.

        Aligned space only: per-transaction candidate unions all live
        in the same label bit space, so "in how many transactions does
        label β extend C" is binary addition of the union masks.  The
        returned slice masks hold every label's count bit-sliced (bit
        β of ``slices[i]`` is bit ``i`` of β's count), built with a
        couple of word-parallel operations per transaction — no
        per-label work happens here at all.
        """
        slices: List[int] = []
        if self.strategy == CACHED:
            for records in self.by_transaction.values():
                if len(records) == 1:
                    carry = records[0][1]
                else:
                    carry = 0
                    for _, cached in records:
                        carry |= cached  # type: ignore[operator]
                for i in range(len(slices)):
                    if not carry:
                        break
                    slice_i = slices[i]
                    slices[i] = slice_i ^ carry
                    carry &= slice_i
                if carry:
                    slices.append(carry)
            return slices
        for tid, records in self.by_transaction.items():
            carry = 0
            for record in records:
                carry |= self._candidates_mask(tid, record)
            for i in range(len(slices)):
                if not carry:
                    break
                slice_i = slices[i]
                slices[i] = slice_i ^ carry
                carry &= slice_i
            if carry:
                slices.append(carry)
        return slices

    def _extension_supports_aligned(self) -> Dict[Label, int]:
        """Aligned-space kernel: read the supports off the slice counter."""
        slices = self._extension_slices()
        supports: Dict[Label, int] = {}
        total = 0
        for slice_i in slices:
            total |= slice_i
        labels = self.space.labels  # type: ignore[union-attr]
        n_slices = len(slices)
        while total:
            top = total.bit_length() - 1
            bit = 1 << top
            total ^= bit
            count = 0
            for i in range(n_slices):
                if slices[i] & bit:
                    count += 1 << i
            supports[labels[top]] = count
        return supports

    def extension_plan(
        self, abs_sup: int
    ) -> Tuple[List[Tuple[Label, int]], int, bool]:
        """Digest of one extension scan, as the miner consumes it.

        Returns ``(frequent, n_infrequent, blocking)``:

        * ``frequent`` — the extension labels with support ≥ ``abs_sup``
          in ascending label order, each with its support,
        * ``n_infrequent`` — how many extension labels fell below the
          threshold (feeds the statistics counter),
        * ``blocking`` — whether some extension label ties the prefix
          support, i.e. the Lemma 4.3 closure check *fails*.

        Semantically equivalent to post-processing
        :meth:`extension_supports`, which is what the generic kernels
        do; the aligned bitset kernel instead answers the threshold
        and tie questions word-parallel on the bit-sliced counter and
        only ever extracts the (few) frequent labels.
        """
        if self.space is not None:
            return self._extension_plan_aligned(abs_sup)
        supports = self.extension_supports()
        prefix_support = self.support
        frequent: List[Tuple[Label, int]] = []
        infrequent = 0
        ties: Set[Label] = set()
        for label in sorted(supports):
            count = supports[label]
            if count == prefix_support:
                ties.add(label)
            if count >= abs_sup:
                frequent.append((label, count))
            else:
                infrequent += 1
        self._ties = ties
        return frequent, infrequent, bool(ties)

    def _extension_plan_aligned(
        self, abs_sup: int
    ) -> Tuple[List[Tuple[Label, int]], int, bool]:
        """Word-parallel threshold/tie tests on the slice counter.

        ``count == prefix support`` is an AND chain matching the
        support's binary digits; ``count >= abs_sup`` is the standard
        bit-sliced subtraction borrow (a label is frequent iff
        ``count - abs_sup`` produces no borrow).  Only frequent labels
        — the ones the miner recurses into anyway — are extracted.
        """
        slices = self._extension_slices()
        total = 0
        for slice_i in slices:
            total |= slice_i
        if not total:
            return [], 0, False
        n_slices = len(slices)

        prefix_support = self.support
        equal = 0
        if not prefix_support >> n_slices:  # else no count can reach it
            equal = total
            for i in range(n_slices):
                if (prefix_support >> i) & 1:
                    equal &= slices[i]
                else:
                    equal &= ~slices[i]
                if not equal:
                    break
        self._ties = equal
        blocking = bool(equal)

        if abs_sup >> n_slices:  # threshold above any representable count
            frequent_mask = 0
        else:
            borrow = 0
            for i in range(n_slices):
                slice_i = slices[i]
                if (abs_sup >> i) & 1:
                    borrow = ~slice_i | (borrow & slice_i)
                else:
                    borrow &= ~slice_i
            frequent_mask = total & ~borrow
        infrequent = popcount(total) - popcount(frequent_mask)

        labels = self.space.labels  # type: ignore[union-attr]
        frequent: List[Tuple[Label, int]] = []
        scan = frequent_mask
        while scan:
            low = scan & -scan
            scan ^= low
            count = 0
            for i in range(n_slices):
                if slices[i] & low:
                    count += 1 << i
            frequent.append((labels[low.bit_length() - 1], count))
        return frequent, infrequent, blocking

    def _extension_supports_mask(self) -> Dict[Label, int]:
        """Bitset kernel: union the candidate masks, then read labels off.

        One ``|`` per embedding collapses the transaction's candidate
        sets before any label work happens; labels are then read off
        the union's set bits top-down (``bit_length`` isolates the
        highest bit in O(1)).  When the graph's labels are unique per
        vertex, each label can appear at most once per union, so the
        per-transaction dedup set is skipped and counts are bumped
        directly.
        """
        supports: Dict[Label, int] = {}
        get = supports.get
        cached_mode = self.strategy == CACHED
        for tid, records in self.by_transaction.items():
            union = 0
            if cached_mode:
                for _, cached in records:
                    union |= cached  # type: ignore[operator]
            else:
                for record in records:
                    union |= self._candidates_mask(tid, record)
            if not union:
                continue
            index = self.database[tid].bit_index()
            labels_by_bit = index.labels_by_bit
            if index.unique_labels:
                while union:
                    top = union.bit_length() - 1
                    union ^= 1 << top
                    label = labels_by_bit[top]
                    supports[label] = get(label, 0) + 1
            else:
                seen: Set[Label] = set()
                while union:
                    top = union.bit_length() - 1
                    union ^= 1 << top
                    seen.add(labels_by_bit[top])
                for label in seen:
                    supports[label] = get(label, 0) + 1
        return supports

    def nonclosed_extension_label(self, last_label: Label) -> Optional[Label]:
        """The Lemma 4.4 test: find a non-closed extension vertex label.

        Returns a label β < ``last_label`` that is, in *every* embedding
        of the prefix, carried by an extension vertex fully connected to
        all other extension vertices of that embedding — or ``None`` if
        no such label exists.  A non-None result licenses pruning the
        whole subtree rooted at the current prefix.

        A blocking label extends C in every supporting transaction, so
        its extension support necessarily ties ``sup(C)``; when a
        preceding :meth:`extension_plan` recorded the tied labels, the
        scan starts from that (usually empty) set instead of from
        scratch.
        """
        if self.space is not None:
            return self._nonclosed_extension_label_aligned(last_label)
        bitset = self.kernel == BITSET
        common: Optional[Set[Label]] = self._ties  # type: ignore[assignment]
        if common is not None:
            # The tie set also holds new labels (≥ last_label); only old
            # labels can block, so drop the rest before seeding the scan.
            common = {label for label in common if label < last_label}
            if not common:
                return None
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            if not bitset:
                label_of = graph.label_map()
                adjacency = graph.adjacency_map()
            for record in records:
                if bitset:
                    fully_connected = fully_connected_old_labels_mask(
                        self._candidates_mask(tid, record), graph, last_label, common
                    )
                else:
                    fully_connected = fully_connected_old_labels(
                        self._candidates(tid, record), adjacency, label_of, last_label, common
                    )
                common = fully_connected if common is None else common & fully_connected
                if not common:
                    return None
        if common:
            return min(common)
        return None

    def _nonclosed_extension_label_aligned(self, last_label: Label) -> Optional[Label]:
        """Aligned-space Lemma 4.4: the label intersection is one AND.

        Qualifying old-label sets come back as masks in the global
        label space, so intersecting across embeddings and picking the
        smallest surviving label (= lowest set bit, since bit order is
        label order) never touches a Python set.
        """
        space = self.space
        views = space.views  # type: ignore[union-attr]
        # Only labels sorting below the last label can block, and any
        # blocking label must tie the prefix support (when known from a
        # preceding extension_plan) — both restrictions are loop
        # invariants, so the running intersection starts from their
        # conjunction and the hot path usually exits here.
        common: int = space.mask_below(last_label)  # type: ignore[union-attr]
        ties = self._ties
        if ties is not None:
            common &= ties  # type: ignore[operator]
        if not common:
            return None
        cached_mode = self.strategy == CACHED
        for tid, records in self.by_transaction.items():
            view = views[tid]
            vertex_by_bit = view.vertex_by_bit
            neighbor_masks = view.neighbor_masks
            for record in records:
                candidates = (
                    record[1] if cached_mode else self._candidates_mask(tid, record)
                )
                scan = candidates & common  # type: ignore[operator]
                qualifying = 0
                while scan:
                    top = scan.bit_length() - 1
                    bit = 1 << top
                    scan ^= bit
                    if (candidates ^ bit) & ~neighbor_masks[vertex_by_bit[top]] == 0:  # type: ignore[operator]
                        qualifying |= bit
                common &= qualifying
                if not common:
                    return None
        if common:
            return space.labels[lowest_bit(common)]  # type: ignore[union-attr]
        return None

    def _child(
        self,
        by_transaction: Dict[int, List[EmbeddingRecord]],
        reuse: Optional["EmbeddingStore"],
    ) -> "EmbeddingStore":
        """Wrap a child's records, recycling ``reuse`` when possible.

        The engine's free list hands back stores whose subtree has
        finished; refilling one in place skips the allocation and the
        constructor's validation (sound: within one mine call the
        database, strategy, kernel, and aligned space never change).
        A ``reuse`` of a different concrete type is ignored.
        """
        if reuse is not None and type(reuse) is EmbeddingStore:
            reuse.database = self.database
            reuse.pseudo = self.pseudo
            reuse.strategy = self.strategy
            reuse.kernel = self.kernel
            reuse.space = self.space
            reuse.size = self.size + 1
            reuse.by_transaction = by_transaction
            reuse._ties = None
            return reuse
        return EmbeddingStore(
            self.database,
            self.pseudo,
            self.strategy,
            self.size + 1,
            by_transaction,
            self.kernel,
            self.space,
        )

    def extend(
        self,
        label: Label,
        last_label: Optional[Label],
        reuse: Optional["EmbeddingStore"] = None,
    ) -> "EmbeddingStore":
        """Embeddings of ``C ◇ label``.

        ``last_label`` is the last label of the current prefix (``None``
        for the empty prefix).  When the extension repeats the last
        label, only vertices with ids above the previous same-label
        vertex are taken, so each vertex set appears exactly once.
        ``reuse`` optionally recycles a retired store object in place
        of a fresh allocation (see :meth:`_child`).
        """
        if self.kernel == BITSET:
            if self.space is not None:
                return self._extend_aligned(label, reuse)
            return self._extend_mask(label, last_label, reuse)
        same_label_tail = last_label is not None and label == last_label
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            label_of = graph.label_map()
            adjacency = graph.adjacency_map()
            extended: List[EmbeddingRecord] = []
            for record in records:
                vertices, cached = record
                floor = vertices[-1] if same_label_tail else None
                for vertex in sorted(self._candidates(tid, record)):
                    if label_of[vertex] != label:
                        continue
                    if floor is not None and vertex <= floor:
                        continue
                    if cached is not None:
                        new_cached: Optional[Set[int]] = cached & adjacency[vertex]
                    else:
                        new_cached = None
                    extended.append((vertices + (vertex,), new_cached))
            if extended:
                by_transaction[tid] = extended
        return self._child(by_transaction, reuse)

    def _extend_aligned(
        self, label: Label, reuse: Optional["EmbeddingStore"] = None
    ) -> "EmbeddingStore":
        """Aligned-space ``extend``: the label filter is a 1-bit AND.

        With unique per-vertex labels a label names at most one vertex
        per transaction, so "candidates carrying β" is ``candidates &
        (1 << bit(β))`` and the same-label ascending-id discipline is
        vacuous: a repeated label would need two distinct vertices with
        the same label in one transaction, which cannot exist here (the
        label's one vertex is already an embedding member, and members
        are absent from their own candidate masks).
        """
        space = self.space
        bit = space.bit_of.get(label)  # type: ignore[union-attr]
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        if bit is not None:
            label_mask = 1 << bit
            views = space.views  # type: ignore[union-attr]
            cached_mode = self.strategy == CACHED
            for tid, records in self.by_transaction.items():
                view = views[tid]
                vertex = view.vertex_by_bit.get(bit)
                if vertex is None:
                    continue
                extended: List[EmbeddingRecord] = []
                if cached_mode:
                    neighbor_mask = view.neighbor_masks[vertex]
                    for vertices, cached in records:
                        if cached & label_mask:  # type: ignore[operator]
                            extended.append((vertices + (vertex,), cached & neighbor_mask))  # type: ignore[operator]
                else:
                    for record in records:
                        if self._candidates_mask(tid, record) & label_mask:
                            extended.append((record[0] + (vertex,), None))
                if extended:
                    by_transaction[tid] = extended
        return self._child(by_transaction, reuse)

    def _extend_mask(
        self,
        label: Label,
        last_label: Optional[Label],
        reuse: Optional["EmbeddingStore"] = None,
    ) -> "EmbeddingStore":
        """Bitset kernel ``extend``: one AND per label filter and per growth.

        Restricting candidates to the extension label is ``mask &
        label_mask``; the same-label ascending-id discipline is a shift
        mask (bit order is sorted vertex id, so "ids above the floor"
        is "bits above the floor's bit").
        """
        same_label_tail = last_label is not None and label == last_label
        cached_mode = self.strategy == CACHED
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            index = graph.bit_index()
            label_mask = index.label_masks.get(label, 0)
            if not label_mask:
                continue
            order = index.order
            bit_of = index.bit
            neighbor_masks = index.neighbor_masks
            extended: List[EmbeddingRecord] = []
            for record in records:
                vertices, cached = record
                grow = self._candidates_mask(tid, record) & label_mask
                if same_label_tail:
                    grow &= -1 << (bit_of[vertices[-1]] + 1)
                while grow:
                    low = grow & -grow
                    grow ^= low
                    vertex = order[low.bit_length() - 1]
                    if cached_mode:
                        new_cached: Optional[int] = cached & neighbor_masks[vertex]  # type: ignore[operator]
                    else:
                        new_cached = None
                    extended.append((vertices + (vertex,), new_cached))
            if extended:
                by_transaction[tid] = extended
        return self._child(by_transaction, reuse)

    def extend_unordered(self, label: Label) -> "EmbeddingStore":
        """Extension without the canonical ordering discipline.

        Used only when structural redundancy pruning is disabled (the
        paper's "simple way" baseline): any extension label is allowed,
        so the per-label ascending-id trick no longer applies and
        duplicate vertex sets are collapsed explicitly per transaction.
        """
        bitset = self.kernel == BITSET
        space = self.space
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            if space is not None:
                view = space.views[tid]
                neighbor_masks = view.neighbor_masks
            elif bitset:
                index = graph.bit_index()
                neighbor_masks = index.neighbor_masks
            seen: Set[frozenset] = set()
            extended: List[EmbeddingRecord] = []
            for record in records:
                vertices, cached = record
                if space is not None:
                    candidates: Iterable[int] = view.vertices_of(
                        self._candidates_mask(tid, record)
                    )
                elif bitset:
                    candidates = graph.vertices_from_mask(
                        self._candidates_mask(tid, record)
                    )
                else:
                    candidates = sorted(self._candidates(tid, record))
                for vertex in candidates:
                    if graph.label(vertex) != label:
                        continue
                    key = frozenset(vertices) | {vertex}
                    if key in seen:
                        continue
                    seen.add(key)
                    if cached is None:
                        new_cached: Union[Set[int], int, None] = None
                    elif bitset:
                        new_cached = cached & neighbor_masks[vertex]  # type: ignore[operator]
                    else:
                        new_cached = cached & graph.neighbors(vertex)
                    extended.append((vertices + (vertex,), new_cached))
            if extended:
                by_transaction[tid] = extended
        return EmbeddingStore(
            self.database,
            self.pseudo,
            self.strategy,
            self.size + 1,
            by_transaction,
            self.kernel,
            self.space,
        )

    def multiplicity_bound(self, valid_labels: Iterable[Label]) -> int:
        """Upper bound on how many more vertices this subtree can add.

        For each supporting transaction, no extension can use more
        vertices than some embedding there has candidate vertices with
        valid labels; conservatively the maximum over transactions
        (support may drop to min_sup of the current set).  Top-k's
        branch-and-bound cut consumes this; the slab kernel overrides
        it with a vectorized column sum.
        """
        valid = set(valid_labels)
        best = 0
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            per_transaction = 0
            for record in records:
                candidates = self._candidates(tid, record)
                count = sum(1 for v in candidates if graph.label(v) in valid)
                per_transaction = max(per_transaction, count)
            best = max(best, per_transaction)
        return best

    def restrict_to(self, transaction_ids: Iterable[int]) -> "EmbeddingStore":
        """Embeddings restricted to a subset of transactions (tests)."""
        keep = set(transaction_ids)
        return EmbeddingStore(
            self.database,
            self.pseudo,
            self.strategy,
            self.size,
            {tid: recs for tid, recs in self.by_transaction.items() if tid in keep},
            self.kernel,
            self.space,
        )

    def __repr__(self) -> str:
        return (
            f"<EmbeddingStore size={self.size} support={self.support} "
            f"embeddings={self.embedding_count} strategy={self.strategy} "
            f"kernel={self.kernel}>"
        )


def warm_kernel_indexes(database: GraphDatabase, kernel: str = BITSET) -> None:
    """Force-build the lazy per-graph indexes the given kernel reads.

    The mask layer (:meth:`Graph.bit_index`, the aligned
    :meth:`GraphDatabase.aligned_space`) and the adjacency maps are all
    built lazily on first touch and cached on the graph objects.  The
    parallel executor calls this in the *parent* before forking its
    pool so every worker inherits the finished indexes copy-on-write
    instead of rebuilding them per process — the "shared index warm-up"
    of the executor design.  Safe to call repeatedly; subsequent calls
    hit the caches.
    """
    if kernel not in _KERNELS:
        raise MiningError(f"unknown kernel {kernel!r}; use one of {_KERNELS}")
    if kernel == SLAB:
        if database.slab_space() is not None:
            return
        kernel = BITSET  # ineligible databases run the int-mask fallback
    if kernel == BITSET:
        space = database.aligned_space()
        if space is None:
            for graph in database:
                graph.bit_index()
        return
    for graph in database:
        graph.label_map()
        graph.adjacency_map()
