"""Embedding bookkeeping for prefix cliques.

An *embedding* of a clique pattern C in a transaction G is a set of
pairwise-adjacent vertices whose sorted labels equal C's canonical
form (Section 2).  CLAN's recursion carries, for the current prefix
clique, its embeddings in every supporting transaction; this module
owns that state and the three scans of Algorithm 1:

* finding the support of every single-label extension (lines 01–03),
* the non-closed prefix pruning test of Lemma 4.4 (lines 04–05),
* materialising the embeddings of ``C ◇ l`` for a chosen extension
  label (line 09).

Two candidate-generation strategies are provided:

``cached``
    Each embedding carries its *extension-vertex set* (the common
    neighbourhood of its vertices, the ``V_i`` of Section 4.3), updated
    incrementally by one set intersection per extension.  This is the
    default and by far the fastest in Python.

``rescan``
    Embeddings store only vertex tuples; extension vertices are
    re-derived per scan by checking the vertices of the *pseudo
    database* (the low-degree-pruned vertex index of Section 4.2)
    against the embedding.  This is the paper's literal procedure and
    exists so the pseudo low-degree pruning ablation measures what the
    paper's design actually saves.

Embeddings with equal labels are generated with vertex ids ascending
inside each label group, so every vertex *set* is enumerated exactly
once even though label multisets are not sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..exceptions import MiningError
from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from .canonical import Label

#: One embedding: its vertex tuple (in canonical label order) and, in
#: ``cached`` mode, the set of vertices adjacent to all of them.
EmbeddingRecord = Tuple[Tuple[int, ...], Optional[Set[int]]]

CACHED = "cached"
RESCAN = "rescan"
_STRATEGIES = (CACHED, RESCAN)


class EmbeddingStore:
    """Embeddings of one prefix clique across all supporting transactions."""

    __slots__ = ("database", "pseudo", "strategy", "size", "by_transaction")

    def __init__(
        self,
        database: GraphDatabase,
        pseudo: Optional[PseudoDatabase],
        strategy: str,
        size: int,
        by_transaction: Dict[int, List[EmbeddingRecord]],
    ) -> None:
        """``pseudo=None`` disables low-degree pruning in ``rescan`` mode."""
        if strategy not in _STRATEGIES:
            raise MiningError(f"unknown embedding strategy {strategy!r}; use one of {_STRATEGIES}")
        self.database = database
        self.pseudo = pseudo
        self.strategy = strategy
        self.size = size
        self.by_transaction = by_transaction

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_label(
        cls,
        database: GraphDatabase,
        pseudo: Optional[PseudoDatabase],
        label: Label,
        strategy: str = CACHED,
    ) -> "EmbeddingStore":
        """Embeddings of the 1-clique with the given label."""
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, graph in enumerate(database):
            records: List[EmbeddingRecord] = []
            for vertex in sorted(graph.vertices_with_label(label)):
                if strategy == CACHED:
                    records.append(((vertex,), set(graph.neighbors(vertex))))
                else:
                    records.append(((vertex,), None))
            if records:
                by_transaction[tid] = records
        return cls(database, pseudo, strategy, 1, by_transaction)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def support(self) -> int:
        """Number of transactions with at least one embedding."""
        return len(self.by_transaction)

    @property
    def embedding_count(self) -> int:
        """Total embeddings across all transactions."""
        return sum(len(records) for records in self.by_transaction.values())

    def transactions(self) -> Tuple[int, ...]:
        """Supporting transaction ids, sorted."""
        return tuple(sorted(self.by_transaction))

    def witnesses(self) -> Dict[int, Tuple[int, ...]]:
        """One witness embedding (sorted vertex tuple) per transaction."""
        return {
            tid: tuple(sorted(records[0][0]))
            for tid, records in self.by_transaction.items()
        }

    def iter_embeddings(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(transaction id, vertex tuple)`` for every embedding."""
        for tid, records in self.by_transaction.items():
            for vertices, _ in records:
                yield tid, vertices

    # ------------------------------------------------------------------
    # Candidate (extension-vertex) computation
    # ------------------------------------------------------------------
    def _candidates(self, tid: int, record: EmbeddingRecord) -> Set[int]:
        """The extension-vertex set ``V_i`` of one embedding."""
        vertices, cached = record
        if cached is not None:
            return cached
        # Paper-literal scan: walk the low-degree-pruned vertex index for
        # the next clique size and keep vertices adjacent to the whole
        # embedding.  (Observation 4.1: a vertex of a (k+1)-clique has
        # core number >= k, i.e. survives pruning at level k+1.)
        graph = self.database[tid]
        if self.pseudo is not None:
            usable: Iterable[int] = self.pseudo.index(tid).usable_at(self.size + 1)
        else:
            usable = graph.vertices()
        members = set(vertices)
        candidates: Set[int] = set()
        for vertex in usable:
            if vertex in members:
                continue
            neighbors = graph.neighbors(vertex)
            if all(u in neighbors for u in vertices):
                candidates.add(vertex)
        return candidates

    # ------------------------------------------------------------------
    # Scans of Algorithm 1
    # ------------------------------------------------------------------
    def extension_supports(self) -> Dict[Label, int]:
        """Support of ``C ◇ β`` for every extension label β.

        A transaction supports ``C ◇ β`` iff some embedding of C in it
        has an extension vertex labeled β; this covers both *new*
        (β ≥ last label) and *old* (β < last label) extension vertices,
        which is exactly what the closure check of Lemma 4.3 needs.
        """
        supports: Dict[Label, int] = {}
        for tid, records in self.by_transaction.items():
            get_label = self.database[tid].label_map().__getitem__
            seen: Set[Label] = set()
            for record in records:
                seen.update(map(get_label, self._candidates(tid, record)))
            for label in seen:
                supports[label] = supports.get(label, 0) + 1
        return supports

    def nonclosed_extension_label(self, last_label: Label) -> Optional[Label]:
        """The Lemma 4.4 test: find a non-closed extension vertex label.

        Returns a label β < ``last_label`` that is, in *every* embedding
        of the prefix, carried by an extension vertex fully connected to
        all other extension vertices of that embedding — or ``None`` if
        no such label exists.  A non-None result licenses pruning the
        whole subtree rooted at the current prefix.
        """
        common: Optional[Set[Label]] = None
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            label_of = graph.label_map()
            adjacency = graph.adjacency_map()
            for record in records:
                candidates = self._candidates(tid, record)
                fully_connected: Set[Label] = set()
                target = len(candidates) - 1
                for vertex in candidates:
                    label = label_of[vertex]
                    if label >= last_label:
                        continue
                    if common is not None and label not in common:
                        continue
                    if label in fully_connected:
                        continue
                    if len(candidates & adjacency[vertex]) == target:
                        fully_connected.add(label)
                common = fully_connected if common is None else common & fully_connected
                if not common:
                    return None
        if common:
            return min(common)
        return None

    def extend(self, label: Label, last_label: Optional[Label]) -> "EmbeddingStore":
        """Embeddings of ``C ◇ label``.

        ``last_label`` is the last label of the current prefix (``None``
        for the empty prefix).  When the extension repeats the last
        label, only vertices with ids above the previous same-label
        vertex are taken, so each vertex set appears exactly once.
        """
        same_label_tail = last_label is not None and label == last_label
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            label_of = graph.label_map()
            adjacency = graph.adjacency_map()
            extended: List[EmbeddingRecord] = []
            for record in records:
                vertices, cached = record
                floor = vertices[-1] if same_label_tail else None
                for vertex in self._candidates(tid, record):
                    if label_of[vertex] != label:
                        continue
                    if floor is not None and vertex <= floor:
                        continue
                    if cached is not None:
                        new_cached: Optional[Set[int]] = cached & adjacency[vertex]
                    else:
                        new_cached = None
                    extended.append((vertices + (vertex,), new_cached))
            if extended:
                by_transaction[tid] = extended
        return EmbeddingStore(
            self.database, self.pseudo, self.strategy, self.size + 1, by_transaction
        )

    def extend_unordered(self, label: Label) -> "EmbeddingStore":
        """Extension without the canonical ordering discipline.

        Used only when structural redundancy pruning is disabled (the
        paper's "simple way" baseline): any extension label is allowed,
        so the per-label ascending-id trick no longer applies and
        duplicate vertex sets are collapsed explicitly per transaction.
        """
        by_transaction: Dict[int, List[EmbeddingRecord]] = {}
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            seen: Set[frozenset] = set()
            extended: List[EmbeddingRecord] = []
            for record in records:
                vertices, cached = record
                for vertex in self._candidates(tid, record):
                    if graph.label(vertex) != label:
                        continue
                    key = frozenset(vertices) | {vertex}
                    if key in seen:
                        continue
                    seen.add(key)
                    if cached is not None:
                        new_cached: Optional[Set[int]] = cached & graph.neighbors(vertex)
                    else:
                        new_cached = None
                    extended.append((vertices + (vertex,), new_cached))
            if extended:
                by_transaction[tid] = extended
        return EmbeddingStore(
            self.database, self.pseudo, self.strategy, self.size + 1, by_transaction
        )

    def restrict_to(self, transaction_ids: Iterable[int]) -> "EmbeddingStore":
        """Embeddings restricted to a subset of transactions (tests)."""
        keep = set(transaction_ids)
        return EmbeddingStore(
            self.database,
            self.pseudo,
            self.strategy,
            self.size,
            {tid: recs for tid, recs in self.by_transaction.items() if tid in keep},
        )

    def __repr__(self) -> str:
        return (
            f"<EmbeddingStore size={self.size} support={self.support} "
            f"embeddings={self.embedding_count} strategy={self.strategy}>"
        )
