"""Shared minimum-support parsing.

Historically the CLI accepted ``"0.85"``, ``"85%"``, and absolute-count
strings while the Python API accepted only ``int`` counts and ``float``
fractions; the two surfaces interpreted borderline inputs differently.
:func:`parse_support` is the single normaliser both use: it maps any
accepted spelling onto the canonical pair the rest of the library
understands — an ``int`` absolute count, or a ``float`` fraction in
``(0, 1]`` — and rejects everything ambiguous with a precise
:class:`~repro.exceptions.InvalidSupportError` *before* a database is
ever consulted.

Database-dependent validation (is the absolute count within ``[1,
|D|]``?) stays in :meth:`repro.graphdb.database.GraphDatabase.
absolute_support`, which accepts this module's output.
"""

from __future__ import annotations

from typing import Union

from ..exceptions import InvalidSupportError

SupportValue = Union[int, float]
SupportInput = Union[int, float, str]


def parse_support(value: SupportInput) -> SupportValue:
    """Normalise a support threshold into an int count or float fraction.

    Accepted spellings:

    ``10`` / ``"10"``
        An absolute transaction count (positive integers only).
    ``0.85`` / ``"0.85"``
        A relative fraction in ``(0, 1]``.
    ``"85%"``
        A percentage in ``(0, 100]``; returned as the fraction ``0.85``.

    Everything else — booleans, zero or negative counts, fractions
    outside ``(0, 1]``, floats ≥ 1 that *look* like counts — raises
    :class:`InvalidSupportError` with a message explaining the accepted
    forms.  In particular ``2.0`` is rejected rather than silently read
    as the absolute count ``2``: a float is always a fraction here.
    """
    if isinstance(value, bool):
        raise InvalidSupportError(value, "booleans are not a support threshold")
    if isinstance(value, str):
        value = _parse_support_text(value)
    if isinstance(value, int):
        if value < 1:
            raise InvalidSupportError(
                value,
                "an absolute support count must be >= 1 (use a float in (0, 1] "
                "or a percentage string for relative thresholds)",
            )
        return value
    if isinstance(value, float):
        if not 0.0 < value <= 1.0:
            raise InvalidSupportError(
                value,
                "a fractional support must be in (0, 1]; write an int for an "
                "absolute count or '85%' for a percentage",
            )
        return value
    raise InvalidSupportError(
        value, "expected an int count, a float fraction, or a string like '85%'"
    )


def _parse_support_text(text: str) -> SupportValue:
    """Parse the string spellings ('10', '0.85', '85%')."""
    stripped = text.strip()
    if not stripped:
        raise InvalidSupportError(text, "empty support string")
    if stripped.endswith("%"):
        try:
            percent = float(stripped[:-1])
        except ValueError:
            raise InvalidSupportError(text, "not a percentage") from None
        if not 0.0 < percent <= 100.0:
            raise InvalidSupportError(text, "percentage must be in (0, 100]")
        return percent / 100.0
    try:
        if "." in stripped or "e" in stripped.lower():
            return float(stripped)
        return int(stripped)
    except ValueError:
        raise InvalidSupportError(
            text, "expected an int count, a decimal fraction, or a percentage"
        ) from None
