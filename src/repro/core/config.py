"""Miner configuration and ablation switches.

Every pruning technique of Section 4 can be toggled independently so
the ablation benchmarks can attribute speedups, and so property tests
can assert that no pruning changes the mined result set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import MiningError
from .embeddings import BITSET, CACHED, RESCAN, SET, SLAB


@dataclass(frozen=True)
class MinerConfig:
    """Configuration of :class:`~repro.core.miner.ClanMiner`.

    Attributes
    ----------
    closed_only:
        Mine only closed cliques (the paper's default task).  When
        False, every frequent clique is reported and the closure-based
        prunings are disabled (they would be unsound for that output).
    structural_redundancy_pruning:
        Grow a prefix only with labels ≥ its last label (Section 4.2).
        Disabling it enumerates each pattern up to ``size!`` times and
        is only useful to measure what the pruning saves; the duplicate
        results are collapsed before reporting.
    low_degree_pruning:
        Pseudo low-degree vertex pruning (Observation 4.1): consult the
        per-level core-number index when scanning for extension
        vertices.  Only consequential under the ``rescan`` embedding
        strategy, which re-scans vertex lists the way the paper does.
    nonclosed_prefix_pruning:
        The Lemma 4.4 subtree pruning.  Requires ``closed_only``.
    min_size / max_size:
        Report only cliques within this size range (the paper reports
        stock cliques of size ≥ 3).  The search itself always starts
        from single labels; ``max_size`` also truncates the search.
    embedding_strategy:
        ``"cached"`` (incremental common-neighbour sets, default) or
        ``"rescan"`` (paper-literal database scans).
    kernel:
        ``"bitset"`` (default) intersects candidate-extension sets as
        arbitrary-precision integer bitmasks — one ``&`` per
        intersection; ``"slab"`` lifts the masks into numpy ``uint64``
        slab arrays with vectorized popcount (transposed over
        transactions on aligned databases, falling back to int masks
        otherwise); ``"set"`` is the original hashed-``set``
        implementation, kept for ablation and differential testing.
        All kernels produce identical results under every strategy
        and pruning combination.
    collect_witnesses:
        Record one witness embedding per supporting transaction in each
        reported pattern.
    max_embeddings:
        Optional safety valve: abort with :class:`MiningError` if the
        live embedding count for a single prefix exceeds this bound.

    Notes
    -----
    Execution-layer knobs — ``processes`` and the parallel
    ``scheduler`` (``"stealing"`` work queue with cost-guided root
    splitting vs ``"static"`` round-robin chunks) — are deliberately
    *not* config fields: they cannot change the mined result, only
    wall-clock, so they live on the call sites instead
    (:func:`repro.mine`, :class:`~repro.core.session.MiningSession`,
    :class:`~repro.core.executor.MiningExecutor`, ``clan mine
    --processes/--scheduler``) and stay out of checkpoints' config
    fingerprints — a checkpoint written serially resumes in parallel
    and vice versa.
    """

    closed_only: bool = True
    structural_redundancy_pruning: bool = True
    low_degree_pruning: bool = True
    nonclosed_prefix_pruning: bool = True
    min_size: int = 1
    max_size: Optional[int] = None
    embedding_strategy: str = CACHED
    kernel: str = BITSET
    collect_witnesses: bool = True
    max_embeddings: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_size < 1:
            raise MiningError(f"min_size must be >= 1, got {self.min_size}")
        if self.max_size is not None and self.max_size < self.min_size:
            raise MiningError(
                f"max_size {self.max_size} is smaller than min_size {self.min_size}"
            )
        if self.embedding_strategy not in (CACHED, RESCAN):
            raise MiningError(
                f"embedding_strategy must be {CACHED!r} or {RESCAN!r}, "
                f"got {self.embedding_strategy!r}"
            )
        if self.kernel not in (SET, BITSET, SLAB):
            raise MiningError(
                f"kernel must be {SET!r}, {BITSET!r}, or {SLAB!r}, "
                f"got {self.kernel!r}"
            )
        if self.nonclosed_prefix_pruning and not self.closed_only:
            raise MiningError(
                "nonclosed_prefix_pruning requires closed_only: pruning a prefix "
                "discards frequent (non-closed) cliques below it"
            )
        if self.nonclosed_prefix_pruning and not self.structural_redundancy_pruning:
            raise MiningError(
                "nonclosed_prefix_pruning is only sound under structural redundancy "
                "pruning (Lemma 4.4's proof assumes canonical-prefix growth)"
            )
        if self.max_embeddings is not None and self.max_embeddings < 1:
            raise MiningError("max_embeddings must be positive when set")

    # Convenience constructors -----------------------------------------
    @classmethod
    def paper_defaults(cls) -> "MinerConfig":
        """The configuration the paper evaluates: all prunings on."""
        return cls()

    @classmethod
    def all_frequent(cls, **overrides: object) -> "MinerConfig":
        """Mine all frequent cliques (Figure 4's full lattice contents)."""
        return cls(closed_only=False, nonclosed_prefix_pruning=False, **overrides)  # type: ignore[arg-type]

    @classmethod
    def for_task(
        cls,
        task: str,
        config: Optional["MinerConfig"] = None,
        min_size: int = 1,
        max_size: Optional[int] = None,
        kernel: Optional[str] = None,
        collect_witnesses: Optional[bool] = None,
    ) -> "MinerConfig":
        """Build/merge the config for an engine-task run.

        The one resolution rule shared by :func:`repro.mine`, the CLI,
        :class:`~repro.core.api.MiningRequest`, and
        :func:`repro.core.cache.sweep`.  Maximal, top-k, and quasi mine
        closed-style (``closed_only=True``, subtree pruning on); their
        emission rules live in the task strategies, not the config.
        ``task="maximal"`` rejects a size ceiling: capping the search
        makes subcliques of capped cliques look maximal.
        """
        closed = task != "frequent"
        if task == "maximal" and max_size is not None:
            raise MiningError(
                "task='maximal' cannot be combined with max_size; a size "
                "ceiling makes subcliques of capped cliques look maximal"
            )
        if config is None:
            resolved = cls(
                closed_only=closed,
                nonclosed_prefix_pruning=closed,
                min_size=min_size,
                max_size=max_size,
            )
        else:
            if config.closed_only != closed:
                raise MiningError(
                    f"config.closed_only={config.closed_only} contradicts task {task!r}"
                )
            if task == "maximal" and config.max_size is not None:
                raise MiningError(
                    "task='maximal' cannot be combined with max_size; a size "
                    "ceiling makes subcliques of capped cliques look maximal"
                )
            resolved = config.with_window(min_size=min_size, max_size=max_size)
        if kernel is not None:
            resolved = resolved.with_kernel(kernel)
        if (
            collect_witnesses is not None
            and collect_witnesses != resolved.collect_witnesses
        ):
            from dataclasses import replace

            resolved = replace(resolved, collect_witnesses=collect_witnesses)
        return resolved

    def with_kernel(self, kernel: str) -> "MinerConfig":
        """Return a copy running on the named kernel (for ablations)."""
        from dataclasses import replace

        return replace(self, kernel=kernel)

    def with_window(
        self, min_size: int = 1, max_size: Optional[int] = None
    ) -> "MinerConfig":
        """Merge an explicitly requested size window into this config.

        Used by the entry points that accept both a ``config`` and bare
        ``min_size``/``max_size`` arguments.  Default window arguments
        (``min_size=1``, ``max_size=None``) defer to the config; a
        non-default argument that *contradicts* a non-default config
        field raises :class:`MiningError` instead of silently picking a
        winner (the historical behaviour was to silently ignore the
        arguments — see ``tests/test_miner.py``).
        """
        from dataclasses import replace

        overrides = {}
        if min_size != 1:
            if self.min_size != 1 and self.min_size != min_size:
                raise MiningError(
                    f"conflicting min_size: argument {min_size} vs "
                    f"config.min_size {self.min_size}"
                )
            overrides["min_size"] = min_size
        if max_size is not None:
            if self.max_size is not None and self.max_size != max_size:
                raise MiningError(
                    f"conflicting max_size: argument {max_size} vs "
                    f"config.max_size {self.max_size}"
                )
            overrides["max_size"] = max_size
        return replace(self, **overrides) if overrides else self

    def digest(self) -> str:
        """A stable SHA-256 over :meth:`to_dict` (cache/checkpoint keys).

        Two configs share a digest iff every field matches.  The digest
        deliberately covers execution-irrelevant fields too (``kernel``,
        ``embedding_strategy``): they cannot change the mined patterns,
        but they do change search *statistics*, and cached statistics
        are replayed verbatim — keying on the full config keeps that
        replay exact at the cost of a conservative miss.
        """
        import hashlib
        import json

        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        """A JSON-ready dict of every field (run records, checkpoints)."""
        return {
            "closed_only": self.closed_only,
            "structural_redundancy_pruning": self.structural_redundancy_pruning,
            "low_degree_pruning": self.low_degree_pruning,
            "nonclosed_prefix_pruning": self.nonclosed_prefix_pruning,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "embedding_strategy": self.embedding_strategy,
            "kernel": self.kernel,
            "collect_witnesses": self.collect_witnesses,
            "max_embeddings": self.max_embeddings,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MinerConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (typo safety); missing keys fall back
        to the defaults, so configs recorded by older versions load.
        """
        known = {
            "closed_only",
            "structural_redundancy_pruning",
            "low_degree_pruning",
            "nonclosed_prefix_pruning",
            "min_size",
            "max_size",
            "embedding_strategy",
            "kernel",
            "collect_witnesses",
            "max_embeddings",
        }
        unknown = set(payload) - known
        if unknown:
            raise MiningError(f"unknown MinerConfig fields: {sorted(unknown)}")
        return cls(**payload)

    def without(self, pruning: str) -> "MinerConfig":
        """Return a copy with one named pruning disabled (for ablations)."""
        flags = {
            "structural_redundancy": "structural_redundancy_pruning",
            "low_degree": "low_degree_pruning",
            "nonclosed_prefix": "nonclosed_prefix_pruning",
        }
        if pruning not in flags:
            raise MiningError(
                f"unknown pruning {pruning!r}; expected one of {sorted(flags)}"
            )
        from dataclasses import replace

        overrides = {flags[pruning]: False}
        if pruning == "structural_redundancy":
            # Lemma 4.4 is only sound under canonical-prefix growth.
            overrides["nonclosed_prefix_pruning"] = False
        return replace(self, **overrides)
