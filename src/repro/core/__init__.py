"""CLAN core: canonical forms, the miner, closure machinery, results.

The public surface of the paper's contribution.  Typical use::

    from repro.core import mine_closed_cliques
    result = mine_closed_cliques(database, min_sup=0.85, min_size=3)
    for pattern in result.maximum_patterns():
        print(pattern.key())
"""

from .api import (
    MINING_TASKS,
    MiningRequest,
    MiningResultEnvelope,
    execute_request,
    mine,
)
from .cache import CachedRoot, MiningCache, mine_with_cache, sweep
from .canonical import (
    CanonicalForm,
    Label,
    canonical_label_sequence,
    is_canonical_sequence,
    is_submultiset,
)
from .closure import (
    HistoryClosureIndex,
    blocking_extension_labels,
    is_closed,
    split_extension_labels,
)
from .config import MinerConfig
from .constraints import (
    CliqueConstraints,
    ConstrainedMiner,
    mine_with_constraints,
    project_database,
)
from .embeddings import (
    BITSET,
    CACHED,
    RESCAN,
    SET,
    SLAB,
    EmbeddingStore,
    warm_kernel_indexes,
)
from .engine import (
    ENGINE_TASKS,
    MiningEngine,
    TaskStrategy,
    engine_for_task,
    finalize_patterns,
    make_strategy,
)
from .executor import (
    STATIC,
    STEALING,
    ExecutorReport,
    MiningExecutor,
    MiningTask,
    estimate_root_costs,
    mine_closed_cliques_parallel,
    partition_roots,
)
from .incremental import IncrementalMiner
from .lattice import CliqueLattice
from .maximal import maximal_subset, mine_maximal_cliques
from .miner import ClanMiner, mine_closed_cliques, mine_frequent_cliques
from .occurrences import (
    embedding_store_for,
    embeddings_in_graph,
    iter_embeddings,
    occurrence_counts,
    occurrence_report,
    total_occurrences,
    transaction_support,
)
from .pattern import CliquePattern, make_pattern
from .topk import mine_top_k_closed_cliques
from .quasiclique import (
    QuasiEmbeddingStore,
    QuasiTaskStrategy,
    is_quasi_clique,
    mine_closed_quasi_cliques,
    quasi_cliques_in_graph,
    required_degree,
)
from .results import MiningResult
from .sharding import (
    DEFAULT_SHARD_SIZE,
    local_threshold,
    mine_sharded,
    shard_bounds,
    shard_database,
)
from .session import (
    CallbackSink,
    CancellationToken,
    EventSink,
    JsonlTraceSink,
    MiningBudget,
    MiningCheckpoint,
    MiningEvent,
    MiningSession,
    PatternEmitted,
    PrefixVisited,
    ProgressSink,
    RingBufferSink,
    RootFinished,
    RootStarted,
    SearchFinished,
    SearchHooks,
    SearchStarted,
    SubtreePruned,
    event_from_dict,
    event_to_dict,
    iter_session_events,
)
from .statistics import MinerStatistics
from .support import parse_support

__all__ = [
    "BITSET",
    "CACHED",
    "CallbackSink",
    "CancellationToken",
    "EventSink",
    "JsonlTraceSink",
    "MINING_TASKS",
    "MiningBudget",
    "MiningCheckpoint",
    "MiningEvent",
    "MiningSession",
    "PatternEmitted",
    "PrefixVisited",
    "ProgressSink",
    "QuasiEmbeddingStore",
    "QuasiTaskStrategy",
    "RingBufferSink",
    "RootFinished",
    "RootStarted",
    "SET",
    "SLAB",
    "STATIC",
    "STEALING",
    "SearchFinished",
    "SearchHooks",
    "SearchStarted",
    "SubtreePruned",
    "CachedRoot",
    "CanonicalForm",
    "ClanMiner",
    "ENGINE_TASKS",
    "MiningEngine",
    "TaskStrategy",
    "engine_for_task",
    "finalize_patterns",
    "make_strategy",
    "CliqueConstraints",
    "CliqueLattice",
    "CliquePattern",
    "ConstrainedMiner",
    "EmbeddingStore",
    "ExecutorReport",
    "HistoryClosureIndex",
    "IncrementalMiner",
    "Label",
    "MinerConfig",
    "MinerStatistics",
    "MiningCache",
    "MiningExecutor",
    "MiningRequest",
    "MiningResult",
    "MiningResultEnvelope",
    "MiningTask",
    "execute_request",
    "RESCAN",
    "blocking_extension_labels",
    "canonical_label_sequence",
    "embedding_store_for",
    "estimate_root_costs",
    "embeddings_in_graph",
    "is_canonical_sequence",
    "is_closed",
    "is_quasi_clique",
    "is_submultiset",
    "iter_embeddings",
    "iter_session_events",
    "event_from_dict",
    "event_to_dict",
    "make_pattern",
    "mine",
    "parse_support",
    "maximal_subset",
    "mine_closed_cliques",
    "mine_maximal_cliques",
    "mine_closed_cliques_parallel",
    "mine_closed_quasi_cliques",
    "mine_frequent_cliques",
    "partition_roots",
    "mine_top_k_closed_cliques",
    "mine_with_cache",
    "mine_with_constraints",
    "DEFAULT_SHARD_SIZE",
    "local_threshold",
    "mine_sharded",
    "shard_bounds",
    "shard_database",
    "sweep",
    "occurrence_counts",
    "occurrence_report",
    "project_database",
    "quasi_cliques_in_graph",
    "required_degree",
    "split_extension_labels",
    "total_occurrences",
    "transaction_support",
    "warm_kernel_indexes",
]
