"""The slab kernel's embedding store (``MinerConfig.kernel="slab"``).

:class:`SlabEmbeddingStore` is the aligned-database fast path of the
slab kernel: it mirrors :class:`repro.core.embeddings.EmbeddingStore`'s
engine-facing surface while keeping the whole per-prefix state in the
transposed slab layout of :mod:`repro.graphdb.slab` — one
``uint64[n_labels, tx_words]`` candidate slab whose row ``α`` masks the
transactions where label ``α`` extends the prefix.

Why transposition is exact here: with unique per-vertex labels a prefix
clique has exactly one embedding per supporting transaction (a label
names at most one vertex), so "the candidate sets of every embedding"
and "per extension label, the supporting transactions" carry the same
information, just batched along the axis numpy can vectorize.

What makes the kernel fast is not the vectorized expressions alone but
*where* they run.  numpy pays ~1µs of dispatch per call; a search tree
visits tens of thousands of prefixes, so per-prefix numpy work would
drown the vector win on small databases.  The kernel therefore answers
per-prefix questions from **level-synchronous forest batches**
(:class:`_SlabForest`, one per mine call, hosted in the context dict
the engine threads through ``root_store``):

* every prefix of one depth reachable by canonical growth from the
  mine call's roots is grown in one ``[m, n_labels, tx_words]`` slab
  expression whose single popcount pass yields every prefix's
  extension-count row (levels are built lazily, on the first
  ``extend`` out of the previous depth),
* the engine always calls ``extension_plan(abs_sup)`` before anything
  else on a store, and ``abs_sup`` is fixed for a mine call — so the
  level batch also derives each prefix's *entire plan digest*
  (frequent list, infrequent count, Lemma 4.3 verdict, tied labels)
  with one thresholded extraction,
* under canonical prefix growth, the rank a prefix's Lemma 4.4 scan
  runs at is its own last bit — known at batch time — so the
  non-closed test for a *whole level* collapses into one chunked
  ``cand & ~nbr[c]`` pass over the (prefix, tied label) pairs,
  resolved lazily on the first store that asks,
* forests whose search tree outgrows ``_FOREST_MAX_CELLS`` stop
  deepening; affected stores fall back to the same batching applied
  per parent (one ``[k, n_labels, tx_words]`` expression over a
  prefix's frequent children), byte-identically.

A tied label ``c`` satisfies ``cand[c] == tx`` by definition
(``counts[c] == support`` and every row is a subset of ``tx``), and
``c`` blocks iff ``cand & ~nbr[c]`` is zero outside row ``c`` — row
``c`` itself always equals ``tx`` (the diagonal of ``nbr`` is zero),
so "zero outside row ``c``" is just a nonzero-word-count comparison,
no masking or mutation needed.

Everything the hot path does not need — witness tuples, per-embedding
records, restriction, the unordered-extension ablation — materialises
the equivalent int-mask records lazily and delegates to the bitset
kernel, which keeps the byte-identity contract trivially.

Construction goes through :meth:`repro.core.embeddings.EmbeddingStore.
for_label`, which dispatches to this class only when the database has
a transposed slab space and the strategy is ``cached``; otherwise the
slab kernel falls back to int masks wholesale (identical results, no
special cases downstream).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from ..graphdb.slab import (
    TransposedSlabSpace,
    int_from_words,
    iter_word_bits,
    popcount_rows,
    popcount_words,
)
from .canonical import Label

#: Pairs per chunk of the batched Lemma 4.4 resolution — bounds the
#: ``[pairs, n_labels, tx_words]`` temporary (a few MB at the default)
#: and, because rows whose answer is already known drop out between
#: chunks, bounds how far the batch can overshoot the sequential
#: scan's early exit.
_PAIR_CHUNK = 256

#: Ceiling on the total ``uint64`` cells a mine call's speculative
#: forest may hold (~128 MB).  Mine calls whose search tree grows past
#: it stop deepening the forest and fall back to per-parent batching —
#: same answers, bounded memory.
_FOREST_MAX_CELLS = 16 * 1024 * 1024


def _first_blocking(
    rows: np.ndarray,
    tied: np.ndarray,
    cand_source: np.ndarray,
    nbr_neg: np.ndarray,
    tx_nonzero: Optional[np.ndarray],
) -> Dict[int, int]:
    """Smallest Lemma 4.4 blocking bit per row, chunk-batched.

    ``rows``/``tied`` hold parallel ``(row, c)`` pairs in ascending
    ``(row, c)`` order: ``cand_source[row]`` is a prefix's candidate
    slab, ``c`` a tied label bit below the prefix's rank, and
    ``tx_nonzero[row]`` the prefix's nonzero-``tx``-word count —
    ``None`` stands for the single-word layout, where every (frequent)
    prefix's count is exactly 1.  ``c`` blocks iff ``cand & ~nbr[c]``
    is zero outside row ``c``; row ``c`` equals ``tx`` exactly (tied +
    zero ``nbr`` diagonal), so blocking is ``count_nonzero(cand &
    ~nbr[c]) == count_nonzero(tx)``.  Rows missing from the result
    have no blocking label.  Rows whose answer is found drop out
    between chunks, bounding how far the batch overshoots the
    sequential scan's early exit.
    """
    answers: Dict[int, int] = {}
    total = int(rows.size)
    if not total:
        return answers
    if tx_nonzero is None:
        # Single-word layout: drop the word axis up front so the
        # chunk temporaries are 2-D.
        cand_source = cand_source[:, :, 0]
        nbr_neg = nbr_neg[:, :, 0]
    answered = np.zeros(cand_source.shape[0], dtype=bool)
    position = 0
    while position < total:
        r = rows[position : position + _PAIR_CHUNK]
        c = tied[position : position + _PAIR_CHUNK]
        position += _PAIR_CHUNK
        keep = ~answered[r]
        if not keep.all():
            r = r[keep]
            c = c[keep]
            if not r.size:
                continue
        bad = cand_source[r] & nbr_neg[c]
        if tx_nonzero is None:
            nonzero = np.count_nonzero(bad, axis=1)
            hits = np.nonzero(nonzero == 1)[0]
        else:
            nonzero = np.count_nonzero(bad, axis=2).sum(axis=1)
            hits = np.nonzero(nonzero == tx_nonzero[r])[0]
        if hits.size:
            hit_rows = r[hits]
            hit_tied = c[hits]
            # Pairs are (row, c)-ascending, so the first occurrence of
            # a row among the hits carries its smallest blocking bit.
            first_rows, first_at = np.unique(hit_rows, return_index=True)
            for row, at in zip(first_rows.tolist(), first_at.tolist()):
                if row not in answers:
                    answers[row] = int(hit_tied[at])
            answered[first_rows] = True
    return answers


class _ForestLevel:
    """One depth slice of a mine call's speculative slab forest.

    Row ``r`` is one prefix clique of size ``depth+1``; the arrays are
    parallel over rows.  ``freq_*`` keep the raw frequent-extension
    extraction so the next level and the Lemma 4.4 batch can be built
    without re-scanning ``counts``.
    """

    __slots__ = (
        "bits",
        "bits_np",
        "cand",
        "tx",
        "supports",
        "digests",
        "freq_rows",
        "freq_cols",
        "freq_vals",
        "tie_rows",
        "tie_cols",
        "child_offsets",
        "child_bits",
        "blocks",
    )

    def __init__(self) -> None:
        self.child_offsets: Optional[List[int]] = None
        self.child_bits: Optional[List[int]] = None
        self.blocks: Optional[Dict[int, int]] = None


class _SlabForest:
    """Level-synchronous expansion of one mine call's DFS forest.

    The engine's DFS asks per-prefix questions one node at a time; on
    small databases the answers are dispatch-bound, not compute-bound
    — a numpy call costs ~1µs whether it touches one row or a
    thousand.  The forest therefore evaluates the *whole* mine call's
    search frontier one level at a time: every prefix of size ``d+1``
    reachable by canonical growth from the mine's roots is grown,
    popcounted, and plan-digested in one batch of vectorized passes.

    Levels are built lazily (level ``d+1`` on the first ``extend``
    from level ``d``), so early aborts — budgets, ``max_size``, top-k
    bounds — never pay for depths the DFS does not reach, and the cut
    prefixes of Lemma 4.4 only overshoot by at most one frontier.
    The forest lives in the per-mine-call context the engine threads
    through ``root_store``; nothing is shared across mine calls, so
    every call performs (and every benchmark measures) its own work.

    Speculation is bounded by ``_FOREST_MAX_CELLS``: a search tree too
    large to keep resident stops deepening and the stores fall back to
    per-parent batching, byte-identically.
    """

    __slots__ = ("slab", "abs_sup", "levels", "cells", "saturated", "root_index", "labels_arr")

    def __init__(
        self,
        slab: TransposedSlabSpace,
        abs_sup: int,
        root_bits: Sequence[int],
    ) -> None:
        self.slab = slab
        self.abs_sup = abs_sup
        self.cells = 0
        self.saturated = False
        self.labels_arr = np.array(slab.space.labels, dtype=object)
        supports = slab.label_tx_counts
        bits = [bit for bit in root_bits if supports[bit] >= abs_sup]
        bits_np = np.array(bits, dtype=np.intp)
        level = self._finish_level(
            bits,
            bits_np,
            slab.nbr[bits_np],
            slab.presence[bits_np],
            slab.root_counts()[bits_np],
            supports[bits_np].tolist(),
        )
        self.levels: List[_ForestLevel] = [level]
        self.root_index = {bit: row for row, bit in enumerate(bits)}

    def _finish_level(
        self,
        bits: List[int],
        bits_np: np.ndarray,
        cand: np.ndarray,
        tx: np.ndarray,
        counts: np.ndarray,
        supports: List[int],
    ) -> _ForestLevel:
        """Digest a freshly grown level: one thresholded extraction.

        Every row is frequent (``support >= abs_sup >= 1``), so tied
        labels (``count == support``) are a subset of the frequent
        ones and fall out of the same extraction — see the tie-cache
        mirror notes on :class:`SlabEmbeddingStore`.
        """
        abs_sup = self.abs_sup
        level = _ForestLevel()
        level.bits = bits
        level.bits_np = bits_np
        level.cand = cand
        level.tx = tx
        level.supports = supports
        self.cells += cand.size

        n = len(bits)
        freq_mask = counts >= abs_sup
        freq_rows, freq_cols = np.nonzero(freq_mask)
        freq_vals = counts[freq_mask]
        n_present = (counts != 0).sum(axis=1).tolist()
        level.freq_rows = freq_rows
        level.freq_cols = freq_cols
        level.freq_vals = freq_vals

        if freq_rows.size:
            pairs_all = list(zip(self.labels_arr[freq_cols].tolist(), freq_vals.tolist()))
            freq_per = np.bincount(freq_rows, minlength=n).tolist()
            tie_mask = freq_vals == np.asarray(supports, dtype=np.int64)[freq_rows]
            tie_rows = freq_rows[tie_mask]
            tie_cols = freq_cols[tie_mask]
            tie_per = np.bincount(tie_rows, minlength=n).tolist()
            tie_flat = tie_cols.tolist()
        else:
            pairs_all = []
            freq_per = [0] * n
            tie_rows = tie_cols = freq_rows
            tie_per = [0] * n
            tie_flat = []
        level.tie_rows = tie_rows
        level.tie_cols = tie_cols

        digests: List[tuple] = []
        fpos = 0
        tpos = 0
        for j in range(n):
            nf = freq_per[j]
            nt = tie_per[j]
            present = n_present[j]
            if present:
                ties = tie_flat[tpos : tpos + nt]
                digests.append(
                    (pairs_all[fpos : fpos + nf], present - nf, bool(ties), ties)
                )
            else:
                digests.append(([], 0, False, None))
            fpos += nf
            tpos += nt
        level.digests = digests
        return level

    def ensure_children(self, depth: int) -> bool:
        """Build level ``depth+1`` (all canonical frequent children).

        Returns False when the forest is saturated — callers then fall
        back to per-parent batching.  Idempotent per level.
        """
        level = self.levels[depth]
        if level.child_offsets is not None:
            return True
        if self.saturated:
            return False
        slab = self.slab
        canon = level.freq_cols >= level.bits_np[level.freq_rows]
        if level.blocks:
            # The engine prunes before it extends, so by the time the
            # first extend out of this level lands here, the level's
            # Lemma 4.4 batch has run iff non-closed subtree pruning is
            # on — and then every blocked row's subtree is cut, so its
            # children need not exist.  (A blocked row extended anyway,
            # e.g. off-engine, falls to the single-extension path.)
            alive = np.ones(len(level.bits), dtype=bool)
            alive[np.fromiter(level.blocks, dtype=np.intp, count=len(level.blocks))] = False
            canon &= alive[level.freq_rows]
        parent_rows = level.freq_rows[canon]
        child_bits = level.freq_cols[canon]
        child_sup = level.freq_vals[canon]
        new_cells = child_bits.size * slab.n_labels * slab.tx_words
        if self.cells + new_cells > _FOREST_MAX_CELLS:
            self.saturated = True
            return False
        offsets = np.zeros(len(level.bits) + 1, dtype=np.int64)
        np.cumsum(np.bincount(parent_rows, minlength=len(level.bits)), out=offsets[1:])
        level.child_offsets = offsets.tolist()
        level.child_bits = child_bits.tolist()
        if not child_bits.size:
            return True
        grown = level.cand[parent_rows]
        grown &= slab.nbr[child_bits]
        tx = level.cand[parent_rows, child_bits]
        grown &= tx[:, None, :]
        pc = popcount_words(grown)
        if slab.tx_words == 1:
            counts = pc[:, :, 0]
        else:
            counts = pc.sum(axis=-1, dtype=np.int64)
        self.levels.append(
            self._finish_level(
                level.child_bits, child_bits, grown, tx, counts, child_sup.tolist()
            )
        )
        return True

    def level_blocks(self, depth: int) -> Dict[int, int]:
        """Smallest Lemma 4.4 blocking bit per row of one level, batched."""
        level = self.levels[depth]
        blocks = level.blocks
        if blocks is None:
            mask = level.tie_cols < level.bits_np[level.tie_rows]
            slab = self.slab
            blocks = level.blocks = _first_blocking(
                level.tie_rows[mask],
                level.tie_cols[mask],
                level.cand,
                slab.nbr_neg(),
                None
                if slab.tx_words == 1
                else np.count_nonzero(level.tx, axis=1),
            )
        return blocks


class SlabEmbeddingStore:
    """Embeddings of one prefix clique, transposed into slab rows.

    API-compatible with the engine-facing surface of
    :class:`~repro.core.embeddings.EmbeddingStore`; ``kernel`` reports
    ``"slab"``.  Instances are created by ``EmbeddingStore.for_label``
    (roots) and :meth:`extend` (children) — the constructor is
    internal plumbing.
    """

    __slots__ = (
        "database",
        "pseudo",
        "strategy",
        "kernel",
        "size",
        "space",
        "slab",
        "_cand",
        "_tx",
        "_support",
        "_member_bits",
        "_counts",
        "_tie_bits",
        "_plan_digest",
        "_plan_abs_sup",
        "_context",
        "_forest",
        "_level",
        "_row",
        "_block_parent",
        "_block_rank",
        "_batch",
        "_child_blocks",
        "_children",
        "_tids",
        "_by_transaction",
    )

    def __init__(
        self,
        database: GraphDatabase,
        pseudo: Optional[PseudoDatabase],
        slab: TransposedSlabSpace,
        size: int,
        member_bits: Tuple[int, ...],
        cand: np.ndarray,
        tx: np.ndarray,
        support: int,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        self.database = database
        self.pseudo = pseudo
        self.strategy = "cached"
        self.kernel = "slab"
        self.size = size
        self.slab = slab
        #: The aligned label space (same object the bitset kernel uses).
        self.space = slab.space
        self._cand = cand
        self._tx = tx
        self._support = support
        self._member_bits = member_bits
        #: Extension supports per label bit, pre-seeded by a parent's
        #: batched child materialisation, else computed on first plan.
        self._counts = counts
        #: Tied label bits (ascending), seeded by the extension plan;
        #: ``None`` mirrors the int-mask kernel's unseeded tie cache.
        self._tie_bits: Optional[List[int]] = None
        #: ``(frequent, n_infrequent, blocking, tie_bits)`` — pre-seeded
        #: by the mine call's forest or a parent's per-parent batch.
        self._plan_digest: Optional[tuple] = None
        self._plan_abs_sup: Optional[int] = None
        #: The engine's per-mine-call context dict (root stores only);
        #: hosts the shared :class:`_SlabForest`.
        self._context: Optional[dict] = None
        #: This store's position in the mine call's forest: the forest,
        #: its level (depth = size - 1), and its row in that level.
        self._forest: Optional[_SlabForest] = None
        self._level: int = 0
        self._row: int = 0
        #: Per-parent fallback: where this store's batched Lemma 4.4
        #: answer lives when the forest is saturated, valid only when
        #: the scan rank equals ``_block_rank``.
        self._block_parent: Optional["SlabEmbeddingStore"] = None
        self._block_rank: Optional[int] = None
        self._batch: Optional[tuple] = None
        self._child_blocks: Optional[Dict[int, int]] = None
        self._children: Optional[Dict[Label, tuple]] = None
        self._tids: Optional[Tuple[int, ...]] = None
        self._by_transaction: Optional[Dict[int, list]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_root(
        cls,
        database: GraphDatabase,
        pseudo: Optional[PseudoDatabase],
        label: Label,
        slab: TransposedSlabSpace,
        context: Optional[dict] = None,
    ) -> "SlabEmbeddingStore":
        """The 1-clique store of one label: two precomputed slab rows.

        ``context`` is the engine's per-mine-call dict; when present it
        hosts the mine call's shared :class:`_SlabForest`.
        """
        bit = slab.space.bit_of.get(label)
        if bit is None:
            empty = np.zeros((slab.n_labels, slab.tx_words), dtype=slab.presence.dtype)
            return cls(
                database, pseudo, slab, 1, (), empty, empty[0], 0
            )
        store = None
        if context is not None:
            pool = context.get("store_pool")
            if pool and type(pool[-1]) is cls and pool[-1].slab is slab:
                # Refill a retired store from the engine's free list —
                # the root-level mirror of :meth:`_child`.
                store = pool.pop()
                store.database = database
                store.pseudo = pseudo
                store.size = 1
                store._member_bits = (bit,)
                store._cand = slab.nbr[bit]
                store._tx = slab.presence[bit]
                store._support = int(slab.label_tx_counts[bit])
                store._counts = slab.root_counts()[bit]
                store._tie_bits = None
                store._plan_digest = None
                store._plan_abs_sup = None
                store._forest = None
                store._level = 0
                store._row = 0
                store._block_parent = None
                store._block_rank = None
                store._batch = None
                store._child_blocks = None
                store._children = None
                store._tids = None
                store._by_transaction = None
        if store is None:
            store = cls(
                database,
                pseudo,
                slab,
                1,
                (bit,),
                slab.nbr[bit],
                slab.presence[bit],
                int(slab.label_tx_counts[bit]),
                slab.root_counts()[bit],
            )
        store._context = context
        return store

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def support(self) -> int:
        """Number of transactions with at least one embedding."""
        return self._support

    @property
    def embedding_count(self) -> int:
        """Total embeddings (= support: one embedding per transaction)."""
        return self._support

    def transactions(self) -> Tuple[int, ...]:
        """Supporting transaction ids, sorted."""
        tids = self._tids
        if tids is None:
            tids = self._tids = tuple(iter_word_bits(self._tx))
        return tids

    def witnesses(self) -> Dict[int, Tuple[int, ...]]:
        """The (single) embedding of each transaction, vertex-sorted.

        Below ~32 supporting transactions per-bit dict lookups win; at
        and above, one fancy index on the slab's cached (transaction,
        bit) → vertex matrix gathers every witness at once (numpy's
        per-call dispatch amortises over the transaction axis).
        """
        tids = self.transactions()
        member_bits = self._member_bits
        if len(tids) >= 32:
            rows = self.slab.vertex_matrix()[list(tids)][:, list(member_bits)]
            rows.sort(axis=1)
            return {tid: tuple(row) for tid, row in zip(tids, rows.tolist())}
        views = self.space.views
        out: Dict[int, Tuple[int, ...]] = {}
        for tid in tids:
            vertex_by_bit = views[tid].vertex_by_bit
            vertices = [vertex_by_bit[bit] for bit in member_bits]
            vertices.sort()
            out[tid] = tuple(vertices)
        return out

    def iter_embeddings(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(transaction id, vertex tuple)`` per embedding.

        Vertices come in canonical (extension) label order, matching
        the int-mask kernels' record tuples.
        """
        views = self.space.views
        member_bits = self._member_bits
        for tid in self.transactions():
            vertex_by_bit = views[tid].vertex_by_bit
            yield tid, tuple(vertex_by_bit[bit] for bit in member_bits)

    # ------------------------------------------------------------------
    # Scans of Algorithm 1
    # ------------------------------------------------------------------
    def extension_supports(self) -> Dict[Label, int]:
        """Support of ``C ◇ β`` for every extension label β."""
        counts = self._ensure_counts()
        labels = self.space.labels
        present = np.nonzero(counts)[0].tolist()
        values = counts[present].tolist() if present else []
        return {labels[bit]: count for bit, count in zip(present, values)}

    def extension_plan(
        self, abs_sup: int
    ) -> Tuple[List[Tuple[Label, int]], int, bool]:
        """Threshold/tie digest of one extension scan.

        Same contract as ``EmbeddingStore.extension_plan``: frequent
        ``(label, support)`` pairs in ascending label order, the
        infrequent-label count, and the Lemma 4.3 verdict.  The digest
        arrives precomputed when this store came out of the mine call's
        forest or a parent's per-parent batch (and ``abs_sup``
        matches); root stores bind to their forest row here; only
        off-engine callers pay a per-store vectorized pass.
        """
        digest = self._plan_digest
        if digest is None or abs_sup != self._plan_abs_sup:
            digest = None
            context = self._context
            if context is not None and self.size == 1 and self._member_bits:
                bit = self._member_bits[0]
                forest = context.get("slab_forest")
                if (
                    forest is None
                    or forest.abs_sup != abs_sup
                    or forest.slab is not self.slab
                ):
                    bit_of = self.space.bit_of
                    root_bits = [
                        bit_of[root]
                        for root in context.get("roots", ())
                        if root in bit_of
                    ]
                    forest = _SlabForest(self.slab, abs_sup, root_bits)
                    context["slab_forest"] = forest
                row = forest.root_index.get(bit)
                if row is not None:
                    self._forest = forest
                    self._level = 0
                    self._row = row
                    digest = forest.levels[0].digests[row]
            if digest is None:
                digest = self._compute_plan(abs_sup)
            self._plan_digest = digest
            self._plan_abs_sup = abs_sup
        frequent, n_infrequent, blocking, tie_bits = digest
        self._tie_bits = tie_bits
        return frequent, n_infrequent, blocking

    def _compute_plan(self, abs_sup: int) -> tuple:
        """The unbatched fallback digest (off-engine callers only)."""
        counts = self._ensure_counts()
        present = counts > 0
        n_present = int(np.count_nonzero(present))
        if not n_present:
            # Mirror the int-mask early return: the tie cache stays
            # unseeded (nonclosed scans then run from scratch).
            return [], 0, False, None
        frequent_mask = present & (counts >= abs_sup)
        tie_bits = np.nonzero(counts == self._support)[0].tolist()
        freq_bits = np.nonzero(frequent_mask)[0].tolist()
        freq_counts = counts[frequent_mask].tolist()
        labels = self.space.labels
        frequent = [
            (labels[bit], count) for bit, count in zip(freq_bits, freq_counts)
        ]
        return frequent, n_present - len(frequent), bool(tie_bits), tie_bits

    def nonclosed_extension_label(self, last_label: Label) -> Optional[Label]:
        """The Lemma 4.4 test, transposed.

        A label ``c`` blocks iff it is a candidate in *every*
        supporting transaction (``cand[c] == tx`` — automatic for tied
        labels) and no other candidate anywhere is non-adjacent to it
        (``cand & ~nbr[c]`` is zero outside row ``c``).  On the engine
        path the answer was resolved by the owning batch — the parent's
        for child prefixes, the slab space's for roots — so this is a
        dict lookup; the scan below only runs for off-engine callers.
        """
        space = self.space
        rank = space.bit_of.get(last_label)
        if rank is None:
            rank = bisect_left(space.labels, last_label)
        if rank == 0:
            return None
        if self._support == 0:
            # Mirror the int-mask scan over zero embeddings: with no
            # tie cache the below-mask survives untouched.
            if self._tie_bits is not None:
                return None
            return space.labels[0]
        forest = self._forest
        if (
            forest is not None
            and self._member_bits
            and rank == self._member_bits[-1]
        ):
            hit = forest.level_blocks(self._level).get(self._row)
            return None if hit is None else space.labels[hit]
        if rank == self._block_rank:
            parent = self._block_parent
            if parent is not None:
                hit = parent._ensure_child_blocks().get(rank)
                return None if hit is None else space.labels[hit]
        tie_bits = self._tie_bits
        if tie_bits is not None:
            # Tied labels below the rank; ``cand[c] == tx`` holds for
            # every tied label, no equality re-check needed.
            candidates: Iterable[int] = tie_bits[: bisect_left(tie_bits, rank)]
            check_equal = False
        else:
            candidates = range(rank)
            check_equal = True
        cand = self._cand
        tx = self._tx
        nbr_neg = self.slab.nbr_neg()
        tx_nonzero: Optional[int] = None
        for bit in candidates:
            if check_equal and not np.array_equal(cand[bit], tx):
                continue
            if tx_nonzero is None:
                tx_nonzero = int(np.count_nonzero(tx))
            bad = cand & nbr_neg[bit]
            if int(np.count_nonzero(bad)) == tx_nonzero:
                return space.labels[int(bit)]
        return None

    def _child(
        self,
        member_bits: Tuple[int, ...],
        cand: np.ndarray,
        tx: np.ndarray,
        support: int,
        reuse: Optional["SlabEmbeddingStore"],
        counts: Optional[np.ndarray] = None,
    ) -> "SlabEmbeddingStore":
        """Wrap a child's slab rows, recycling ``reuse`` when possible.

        The engine's free list hands back stores whose subtree has
        finished; refilling one in place re-assigns the per-prefix
        fields and clears every lazy cache, skipping the allocation
        and the ~25-field constructor.  Sound within one mine call:
        the database, slab, and aligned space never change (guarded by
        the ``reuse.slab is self.slab`` check, which also rejects
        foreign store types).
        """
        if (
            reuse is not None
            and type(reuse) is SlabEmbeddingStore
            and reuse.slab is self.slab
        ):
            reuse.database = self.database
            reuse.pseudo = self.pseudo
            reuse.size = self.size + 1
            reuse._member_bits = member_bits
            reuse._cand = cand
            reuse._tx = tx
            reuse._support = support
            reuse._counts = counts
            reuse._tie_bits = None
            reuse._plan_digest = None
            reuse._plan_abs_sup = None
            reuse._context = None
            reuse._forest = None
            reuse._level = 0
            reuse._row = 0
            reuse._block_parent = None
            reuse._block_rank = None
            reuse._batch = None
            reuse._child_blocks = None
            reuse._children = None
            reuse._tids = None
            reuse._by_transaction = None
            return reuse
        return SlabEmbeddingStore(
            self.database,
            self.pseudo,
            self.slab,
            self.size + 1,
            member_bits,
            cand,
            tx,
            support,
            counts,
        )

    def extend(
        self,
        label: Label,
        last_label: Optional[Label] = None,
        reuse: Optional["SlabEmbeddingStore"] = None,
    ) -> "SlabEmbeddingStore":
        """Embeddings of ``C ◇ label`` — two ANDs on the slab.

        The same-label ordering discipline (``last_label``) is vacuous
        in aligned space, exactly as for the aligned int-mask kernel.
        Stores bound to the mine call's forest hand out their children
        as views into the next forest level (built for the whole
        frontier on first demand); saturated forests and off-engine
        stores batch the frequent children per parent instead; other
        labels take the single path.  ``reuse`` optionally recycles a
        retired store object (see :meth:`_child`).
        """
        forest = self._forest
        member_bits = self._member_bits
        if forest is not None and member_bits:
            bit = self.space.bit_of.get(label)
            if bit is not None and bit >= member_bits[-1] and (
                forest.levels[self._level].child_offsets is not None
                or forest.ensure_children(self._level)
            ):
                level = forest.levels[self._level]
                lo = level.child_offsets[self._row]
                hi = level.child_offsets[self._row + 1]
                i = bisect_left(level.child_bits, bit, lo, hi)
                if i < hi and level.child_bits[i] == bit:
                    next_level = forest.levels[self._level + 1]
                    child = self._child(
                        member_bits + (bit,),
                        next_level.cand[i],
                        next_level.tx[i],
                        next_level.supports[i],
                        reuse,
                    )
                    child._plan_digest = next_level.digests[i]
                    child._plan_abs_sup = forest.abs_sup
                    child._forest = forest
                    child._level = self._level + 1
                    child._row = i
                    return child
                return self._extend_single(label, reuse)
        children = self._children
        if children is None:
            children = self._children = self._materialize_children(last_label)
        hit = children.get(label)
        if hit is None:
            return self._extend_single(label, reuse)
        row, bit, digest, support = hit
        batch = self._batch
        child = self._child(
            self._member_bits + (bit,),
            batch[1][row],
            batch[3][row],
            support,
            reuse,
        )
        child._plan_digest = digest
        child._plan_abs_sup = self._plan_abs_sup
        child._block_parent = self
        child._block_rank = bit
        return child

    def _materialize_children(self, last_label: Optional[Label]) -> Dict[Label, tuple]:
        """Batch-build the frequent children recorded by the last plan.

        One ``[k, n_labels, tx_words]`` expression grows every child;
        its popcount pass seeds their extension counts, and one fused
        thresholded extraction seeds their entire plan digests (sound
        because the engine's ``abs_sup`` is fixed per mine call and
        recorded by this store's own plan, and every batched child is
        frequent — so tied labels are a subset of frequent ones, see
        :func:`_group_plan_digests`).  Children below ``last_label``
        are skipped — canonical growth never visits them (``extend``
        still serves them via the single path).  The child map holds
        ``label -> (batch row, bit, digest, support)``.
        """
        digest = self._plan_digest
        abs_sup = self._plan_abs_sup
        if digest is None or not digest[0] or not abs_sup or abs_sup < 1:
            return {}
        space = self.space
        bit_of = space.bit_of
        if last_label is None:
            cutoff = 0
        else:
            cutoff = bit_of.get(last_label)
            if cutoff is None:
                cutoff = bisect_left(space.labels, last_label)
        triples = [
            (bit_of[lab], lab, count)
            for lab, count in digest[0]
            if bit_of[lab] >= cutoff
        ]
        if not triples:
            return {}
        slab = self.slab
        labels = space.labels
        cand = self._cand
        bits_list = [bit for bit, _, _ in triples]
        bits = np.array(bits_list, dtype=np.intp)
        grown = slab.nbr[bits]
        grown &= cand
        tx_rows = cand[bits]
        grown &= tx_rows[:, None, :]
        pc = popcount_words(grown)
        if slab.tx_words == 1:
            counts = pc[:, :, 0]
        else:
            counts = pc.sum(axis=-1, dtype=np.int64)

        # The digest extraction of _group_plan_digests, inlined: one
        # thresholded nonzero finds the frequent labels and (because
        # every child is frequent) the tied ones among them.
        freq_mask = counts >= abs_sup
        rows, cols = np.nonzero(freq_mask)
        values = counts[freq_mask]
        n_present = (counts != 0).sum(axis=1)

        sup_list = [count for _, _, count in triples]
        frequent_lists: List[list] = [[] for _ in triples]
        tie_lists: List[list] = [[] for _ in triples]
        for row, col, value in zip(rows.tolist(), cols.tolist(), values.tolist()):
            frequent_lists[row].append((labels[col], value))
            if value == sup_list[row]:
                tie_lists[row].append(col)

        child_digests: Dict[int, tuple] = {}
        children: Dict[Label, tuple] = {}
        for j, present in enumerate(n_present.tolist()):
            bit, lab, count = triples[j]
            if present:
                frequent = frequent_lists[j]
                tie_bits = tie_lists[j]
                child = (frequent, present - len(frequent), bool(tie_bits), tie_bits)
            else:
                child = ([], 0, False, None)
            child_digests[bit] = child
            children[lab] = (j, bit, child, count)
        self._batch = (bits_list, grown, child_digests, tx_rows)
        return children

    def _ensure_child_blocks(self) -> Dict[int, int]:
        """Lemma 4.4 answers for this store's batched children.

        Resolved lazily on the first child that asks (the closure
        prunings may be disabled, in which case nobody ever does), in
        one chunked pass over every (child, tied-bit-below-rank) pair.
        """
        blocks = self._child_blocks
        if blocks is None:
            bits, grown, digests, tx_rows = self._batch
            pair_rows: List[int] = []
            pair_tied: List[int] = []
            for row, bit in enumerate(bits):
                tie_bits = digests[bit][3]
                if not tie_bits:
                    continue
                for tied in tie_bits:
                    if tied >= bit:
                        break
                    pair_rows.append(row)
                    pair_tied.append(tied)
            if self.slab.tx_words == 1:
                tx_nonzero = None
            else:
                tx_nonzero = np.count_nonzero(tx_rows, axis=1)
            by_row = _first_blocking(
                np.asarray(pair_rows, dtype=np.intp),
                np.asarray(pair_tied, dtype=np.intp),
                grown,
                self.slab.nbr_neg(),
                tx_nonzero,
            )
            blocks = self._child_blocks = {
                bits[row]: hit for row, hit in by_row.items()
            }
        return blocks

    def _extend_single(
        self, label: Label, reuse: Optional["SlabEmbeddingStore"] = None
    ) -> "SlabEmbeddingStore":
        bit = self.space.bit_of.get(label)
        cand = self._cand
        if bit is None:
            empty = np.zeros_like(cand)
            return self._child(
                self._member_bits,
                empty,
                empty[0] if len(empty) else self._tx[:0],
                0,
                reuse,
            )
        row = cand[bit]
        grown = (cand & self.slab.nbr[bit]) & row
        counts = self._counts
        support = (
            int(counts[bit])
            if counts is not None
            else int(popcount_rows(row[None, :])[0])
        )
        return self._child(
            self._member_bits + (bit,),
            grown,
            row,
            support,
            reuse,
        )

    def _ensure_counts(self) -> np.ndarray:
        counts = self._counts
        if counts is None:
            counts = self._counts = popcount_rows(self._cand)
        return counts

    # ------------------------------------------------------------------
    # Branch-and-bound support (top-k)
    # ------------------------------------------------------------------
    def multiplicity_bound(self, valid_labels: Sequence[Label]) -> int:
        """Max candidates with a valid label in any one transaction.

        The slab analogue of ``EmbeddingStore.multiplicity_bound``:
        gather the valid labels' rows and column-sum their unpacked
        bits — one vectorized pass instead of a per-embedding scan.
        """
        bit_of = self.space.bit_of
        rows = [bit_of[label] for label in valid_labels if label in bit_of]
        if not rows or not self._support:
            return 0
        picked = np.ascontiguousarray(self._cand[np.asarray(rows, dtype=np.intp)])
        bits = np.unpackbits(picked.view(np.uint8), axis=-1, bitorder="little")
        return int(bits.sum(axis=0, dtype=np.int64).max())

    # ------------------------------------------------------------------
    # Record-level surface (cold paths delegate to the int-mask kernel)
    # ------------------------------------------------------------------
    @property
    def by_transaction(self) -> Dict[int, list]:
        """Int-mask embedding records, materialised lazily.

        One record per supporting transaction — the vertex tuple in
        canonical label order plus the candidate mask as an aligned
        int bitmask — exactly what the bitset kernel would hold.
        """
        records = self._by_transaction
        if records is None:
            records = self._by_transaction = self._materialize_records()
        return records

    def _materialize_records(self) -> Dict[int, list]:
        views = self.space.views
        member_bits = self._member_bits
        tids = self.transactions()
        records: Dict[int, list] = {}
        if not tids:
            return records
        # Column-extract each supporting transaction's candidate mask.
        cand = np.ascontiguousarray(self._cand)
        bits = np.unpackbits(cand.view(np.uint8), axis=-1, bitorder="little")
        for tid in tids:
            vertex_by_bit = views[tid].vertex_by_bit
            vertices = tuple(vertex_by_bit[bit] for bit in member_bits)
            column = np.packbits(bits[:, tid], bitorder="little")
            records[tid] = [(vertices, int.from_bytes(column.tobytes(), "little"))]
        return records

    def _candidates(self, tid: int, record) -> Set[int]:
        """Kernel-independent candidate accessor (tests, top-k legacy)."""
        return set(self.space.views[tid].vertices_of(record[1]))

    def _to_bitset_store(self):
        """An equivalent ``EmbeddingStore`` on the aligned bitset kernel."""
        from .embeddings import BITSET, EmbeddingStore

        return EmbeddingStore(
            self.database,
            self.pseudo,
            self.strategy,
            self.size,
            {tid: list(recs) for tid, recs in self.by_transaction.items()},
            BITSET,
            self.space,
        )

    def extend_unordered(self, label: Label):
        """Unordered extension (redundancy-pruning-off ablation only)."""
        return self._to_bitset_store().extend_unordered(label)

    def restrict_to(self, transaction_ids: Iterable[int]):
        """Embeddings restricted to a subset of transactions (tests)."""
        return self._to_bitset_store().restrict_to(transaction_ids)

    def __repr__(self) -> str:
        return (
            f"<SlabEmbeddingStore size={self.size} support={self._support} "
            f"embeddings={self.embedding_count} strategy={self.strategy} "
            f"kernel={self.kernel}>"
        )


def candidate_mask_int(store: SlabEmbeddingStore, tid: int) -> int:
    """A transaction's candidate set as an aligned int mask (tests)."""
    records = store.by_transaction.get(tid)
    return records[0][1] if records else 0


__all__ = ["SlabEmbeddingStore", "candidate_mask_int", "int_from_words"]
