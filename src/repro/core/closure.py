"""Clique closure checking (paper Section 4.3, Lemma 4.3).

A prefix clique C is closed iff no single extension label β — *new*
(β ≥ last label of C) or *old* (β < last label) — yields a superclique
``C ◇ β`` with the same support.  The scan-based check simply compares
the extension-label supports against ``sup(C)``.

The paper also notes (via Lemma 4.1) an alternative route for the
old-extension half: look up the already-mined cliques for a proper
superclique with equal support, using a hash structure over canonical
forms.  :class:`HistoryClosureIndex` implements that structure; the
naive baseline and the post-filtering pipeline use it, and tests assert
the two routes agree.

This module also owns the per-embedding half of the Lemma 4.4
non-closed prefix test — "which old labels are carried by an extension
vertex fully connected to all other extension vertices" — in both
kernels: :func:`fully_connected_old_labels` walks Python sets,
:func:`fully_connected_old_labels_mask` does the same connectivity
check with one bitmask AND per candidate vertex.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..graphdb.graph import Graph
from .canonical import CanonicalForm, Label
from .pattern import CliquePattern


def blocking_extension_labels(
    support: int, extension_supports: Mapping[Label, int]
) -> List[Label]:
    """Labels whose one-vertex extension has the same support as the prefix.

    Any non-empty result proves the prefix non-closed (Lemma 4.3).
    """
    return sorted(
        label for label, ext_support in extension_supports.items() if ext_support == support
    )


def is_closed(support: int, extension_supports: Mapping[Label, int]) -> bool:
    """The Lemma 4.3 closure test from precomputed extension supports."""
    return all(ext_support < support for ext_support in extension_supports.values())


def split_extension_labels(
    extension_supports: Mapping[Label, int], last_label: Optional[Label]
) -> Tuple[Dict[Label, int], Dict[Label, int]]:
    """Split extension supports into (old, new) relative to the last label.

    With ``last_label=None`` (the empty prefix) everything is new.
    """
    old: Dict[Label, int] = {}
    new: Dict[Label, int] = {}
    for label, ext_support in extension_supports.items():
        if last_label is not None and label < last_label:
            old[label] = ext_support
        else:
            new[label] = ext_support
    return old, new


def fully_connected_old_labels(
    candidates: Set[int],
    adjacency: Mapping[int, Set[int]],
    label_of: Mapping[int, Label],
    last_label: Label,
    allowed: Optional[Set[Label]] = None,
) -> Set[Label]:
    """Old labels of extension vertices adjacent to every other one.

    The per-embedding ingredient of Lemma 4.4: a label β < ``last_label``
    qualifies when some candidate vertex carrying β is connected to all
    other candidates of this embedding.  ``allowed`` (when given) is the
    running cross-embedding intersection — labels outside it cannot
    survive, so their connectivity check is skipped.
    """
    qualifying: Set[Label] = set()
    target = len(candidates) - 1
    for vertex in candidates:
        label = label_of[vertex]
        if label >= last_label:
            continue
        if allowed is not None and label not in allowed:
            continue
        if label in qualifying:
            continue
        if len(candidates & adjacency[vertex]) == target:
            qualifying.add(label)
    return qualifying


def fully_connected_old_labels_mask(
    candidates_mask: int,
    graph: Graph,
    last_label: Label,
    allowed: Optional[Set[Label]] = None,
) -> Set[Label]:
    """Bitset-kernel variant of :func:`fully_connected_old_labels`.

    The scan is first restricted to the mask of vertices carrying an
    eligible old label (the union of the relevant per-label masks), so
    candidates that cannot qualify are never visited.  A candidate
    ``v`` is fully connected to the other candidates iff the
    candidates outside ``v``'s neighbourhood are exactly ``{v}``, i.e.
    ``(candidates ^ bit(v)) & ~neighbor_mask(v) == 0``; once a label
    qualifies, its remaining vertices are masked out of the scan.
    """
    index = graph.bit_index()
    label_masks = index.label_masks
    if allowed is None:
        old_mask = index.mask_below(last_label)
    else:
        old_mask = 0
        for label in allowed:
            old_mask |= label_masks.get(label, 0)
    scan = candidates_mask & old_mask
    if not scan:
        return set()
    order = index.order
    labels_by_bit = index.labels_by_bit
    neighbor_masks = index.neighbor_masks
    qualifying: Set[Label] = set()
    while scan:
        top = scan.bit_length() - 1
        bit = 1 << top
        scan ^= bit
        if (candidates_mask ^ bit) & ~neighbor_masks[order[top]] == 0:
            label = labels_by_bit[top]
            qualifying.add(label)
            scan &= ~label_masks[label]
    return qualifying


def fully_connected_old_labels_aligned(
    candidates_mask: int,
    view,
    space,
    last_label: Label,
    allowed: Optional[int] = None,
) -> int:
    """Aligned-space variant of :func:`fully_connected_old_labels`.

    ``candidates_mask`` lives in the database-global label bit space
    (:class:`~repro.graphdb.bitset.DatabaseLabelSpace`), where "labels
    strictly below ``last_label``" is one contiguous low mask shared by
    every transaction and labels are bits — so the qualifying set is
    returned as a mask (``allowed`` likewise), letting the caller
    intersect across embeddings with a single ``&``.
    """
    old_mask = space.mask_below(last_label)
    if allowed is not None:
        old_mask &= allowed
    scan = candidates_mask & old_mask
    if not scan:
        return 0
    vertex_by_bit = view.vertex_by_bit
    neighbor_masks = view.neighbor_masks
    qualifying = 0
    while scan:
        top = scan.bit_length() - 1
        bit = 1 << top
        scan ^= bit
        if (candidates_mask ^ bit) & ~neighbor_masks[vertex_by_bit[top]] == 0:
            qualifying |= bit
    return qualifying


class HistoryClosureIndex:
    """Hash structure over already-mined cliques (Section 4.3).

    Mined canonical forms are bucketed by support; a query for pattern
    C with support s runs the Lemma 4.1 substring test against the
    bucket for s only.  Inside a bucket, forms are additionally grouped
    by size so the proper-superclique constraint (strictly larger) cuts
    the candidate list before any substring test runs.
    """

    __slots__ = ("_by_support",)

    def __init__(self, patterns: Iterable[CliquePattern] = ()) -> None:
        # support -> size -> list of canonical forms
        self._by_support: Dict[int, Dict[int, List[CanonicalForm]]] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: CliquePattern) -> None:
        """Register a mined pattern."""
        bucket = self._by_support.setdefault(pattern.support, {})
        bucket.setdefault(pattern.size, []).append(pattern.form)

    def add_form(self, form: CanonicalForm, support: int) -> None:
        """Register a mined canonical form with its support."""
        self._by_support.setdefault(support, {}).setdefault(form.size, []).append(form)

    def has_superclique_with_support(self, form: CanonicalForm, support: int) -> bool:
        """Return whether a mined proper superclique of ``form`` has ``support``.

        True implies ``form`` is not closed (there exists at least one
        old or new extension vertex; see the Lemma 4.1 discussion).
        """
        bucket = self._by_support.get(support)
        if not bucket:
            return False
        for size, forms in bucket.items():
            if size <= form.size:
                continue
            for candidate in forms:
                if form.is_subclique_of(candidate):
                    return True
        return False

    def __len__(self) -> int:
        return sum(len(forms) for bucket in self._by_support.values() for forms in bucket.values())
