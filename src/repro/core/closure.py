"""Clique closure checking (paper Section 4.3, Lemma 4.3).

A prefix clique C is closed iff no single extension label β — *new*
(β ≥ last label of C) or *old* (β < last label) — yields a superclique
``C ◇ β`` with the same support.  The scan-based check simply compares
the extension-label supports against ``sup(C)``.

The paper also notes (via Lemma 4.1) an alternative route for the
old-extension half: look up the already-mined cliques for a proper
superclique with equal support, using a hash structure over canonical
forms.  :class:`HistoryClosureIndex` implements that structure; the
naive baseline and the post-filtering pipeline use it, and tests assert
the two routes agree.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .canonical import CanonicalForm, Label
from .pattern import CliquePattern


def blocking_extension_labels(
    support: int, extension_supports: Mapping[Label, int]
) -> List[Label]:
    """Labels whose one-vertex extension has the same support as the prefix.

    Any non-empty result proves the prefix non-closed (Lemma 4.3).
    """
    return sorted(
        label for label, ext_support in extension_supports.items() if ext_support == support
    )


def is_closed(support: int, extension_supports: Mapping[Label, int]) -> bool:
    """The Lemma 4.3 closure test from precomputed extension supports."""
    return all(ext_support < support for ext_support in extension_supports.values())


def split_extension_labels(
    extension_supports: Mapping[Label, int], last_label: Optional[Label]
) -> Tuple[Dict[Label, int], Dict[Label, int]]:
    """Split extension supports into (old, new) relative to the last label.

    With ``last_label=None`` (the empty prefix) everything is new.
    """
    old: Dict[Label, int] = {}
    new: Dict[Label, int] = {}
    for label, ext_support in extension_supports.items():
        if last_label is not None and label < last_label:
            old[label] = ext_support
        else:
            new[label] = ext_support
    return old, new


class HistoryClosureIndex:
    """Hash structure over already-mined cliques (Section 4.3).

    Mined canonical forms are bucketed by support; a query for pattern
    C with support s runs the Lemma 4.1 substring test against the
    bucket for s only.  Inside a bucket, forms are additionally grouped
    by size so the proper-superclique constraint (strictly larger) cuts
    the candidate list before any substring test runs.
    """

    __slots__ = ("_by_support",)

    def __init__(self, patterns: Iterable[CliquePattern] = ()) -> None:
        # support -> size -> list of canonical forms
        self._by_support: Dict[int, Dict[int, List[CanonicalForm]]] = {}
        for pattern in patterns:
            self.add(pattern)

    def add(self, pattern: CliquePattern) -> None:
        """Register a mined pattern."""
        bucket = self._by_support.setdefault(pattern.support, {})
        bucket.setdefault(pattern.size, []).append(pattern.form)

    def add_form(self, form: CanonicalForm, support: int) -> None:
        """Register a mined canonical form with its support."""
        self._by_support.setdefault(support, {}).setdefault(form.size, []).append(form)

    def has_superclique_with_support(self, form: CanonicalForm, support: int) -> bool:
        """Return whether a mined proper superclique of ``form`` has ``support``.

        True implies ``form`` is not closed (there exists at least one
        old or new extension vertex; see the Lemma 4.1 discussion).
        """
        bucket = self._by_support.get(support)
        if not bucket:
            return False
        for size, forms in bucket.items():
            if size <= form.size:
                continue
            for candidate in forms:
                if form.is_subclique_of(candidate):
                    return True
        return False

    def __len__(self) -> int:
        return sum(len(forms) for bucket in self._by_support.values() for forms in bucket.values())
