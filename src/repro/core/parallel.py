"""Removed shim: this module folded into :mod:`repro.core.executor`.

``repro.core.parallel`` used to hold the one-call parallel entry point
:func:`mine_closed_cliques_parallel`; the scheduling itself always
lived in :mod:`repro.core.executor`, and the wrapper now does too.

Per the deprecation policy (CONTRIBUTING.md), this shim has graduated
from emitting a ``DeprecationWarning`` to raising a
:class:`~repro.exceptions.MiningError` with a migration hint: merely
importing the module stays silent for tooling that scans packages
(PEP 562), but touching the moved names now fails loudly.

Use instead::

    from repro.core.executor import mine_closed_cliques_parallel, partition_roots
"""

from __future__ import annotations

from ..exceptions import MiningError

__all__ = ["mine_closed_cliques_parallel", "partition_roots"]


def __getattr__(name: str):
    if name in __all__:
        raise MiningError(
            f"repro.core.parallel.{name} has been removed; import it "
            f"from repro.core.executor instead: "
            f"'from repro.core.executor import {name}'"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
