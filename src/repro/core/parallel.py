"""Parallel closed clique mining.

CLAN's DFS subtrees are independent: under structural redundancy
pruning, every pattern belongs to exactly one subtree (the one rooted
at its smallest label), and all closure/pruning decisions inside a
subtree consult only that subtree's embeddings.  Partitioning the
frequent 1-clique roots across worker processes therefore partitions
both the work and the result set exactly.

The scheduling itself lives in :mod:`repro.core.executor`:
``scheduler="stealing"`` (the default) runs the adaptive work queue
with cost-guided root splitting and shared index warm-up;
``scheduler="static"`` keeps the original round-robin chunking as the
comparison baseline.  Either way the merged result is byte-identical
to the serial miner's, merged statistics sum the per-task counters
(``statistics.cpu_seconds`` aggregates in-worker mining time), and
``elapsed_seconds`` is this call's wall-clock time.

For small databases the serial miner wins — process startup dominates —
so this is for the long-running workloads; ``processes=1`` bypasses
the pool entirely.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Optional

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .config import MinerConfig
from .executor import STEALING, MiningExecutor, partition_roots
from .miner import ClanMiner
from .results import MiningResult

__all__ = ["mine_closed_cliques_parallel", "partition_roots"]


def mine_closed_cliques_parallel(
    database: GraphDatabase,
    min_sup: float,
    processes: Optional[int] = None,
    config: Optional[MinerConfig] = None,
    chunks_per_process: int = 4,
    scheduler: str = STEALING,
) -> MiningResult:
    """Mine closed cliques with a process pool over DFS roots.

    Results are identical to :class:`ClanMiner` (tested); statistics
    are summed across workers, with ``cpu_seconds`` aggregating the
    in-worker mining time and ``elapsed_seconds`` reporting this
    call's wall clock.  With ``processes=1`` the pool is bypassed
    entirely, which keeps the call cheap to use in code that sometimes
    runs small inputs.  The candidate-intersection kernel
    (``config.kernel``, bitset by default) travels with the pickled
    config, and the parent warms every kernel index before forking so
    workers inherit them copy-on-write.  ``scheduler`` selects the
    adaptive work-stealing executor (default) or the legacy static
    round-robin chunks — see :class:`repro.core.executor.MiningExecutor`.
    """
    started = time.perf_counter()
    if config is None:
        config = MinerConfig()
    if not config.structural_redundancy_pruning:
        raise MiningError(
            "parallel mining partitions DFS roots and requires structural "
            "redundancy pruning"
        )
    if processes is None:
        processes = multiprocessing.cpu_count()

    if processes <= 1:
        result = ClanMiner(database, config).mine(min_sup)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    with MiningExecutor(
        database,
        config,
        processes=processes,
        scheduler=scheduler,
        chunks_per_process=chunks_per_process,
    ) as executor:
        result = executor.mine(min_sup)
    result.elapsed_seconds = time.perf_counter() - started
    return result
