"""Deprecated shim: this module folded into :mod:`repro.core.executor`.

``repro.core.parallel`` used to hold the one-call parallel entry point
:func:`mine_closed_cliques_parallel`; the scheduling itself always
lived in :mod:`repro.core.executor`, and the wrapper now does too.
Importing the names from here keeps working but emits a
``DeprecationWarning`` on attribute access (PEP 562), so merely
importing the module stays warning-free for tooling that scans
packages.

Use instead::

    from repro.core.executor import mine_closed_cliques_parallel, partition_roots
"""

from __future__ import annotations

import warnings

__all__ = ["mine_closed_cliques_parallel", "partition_roots"]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.core.parallel.{name} moved to repro.core.executor; "
            f"the repro.core.parallel shim will be removed in a future "
            f"release",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import executor

        return getattr(executor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
