"""Parallel closed clique mining.

CLAN's DFS subtrees are independent: under structural redundancy
pruning, every pattern belongs to exactly one subtree (the one rooted
at its smallest label), and all closure/pruning decisions inside a
subtree consult only that subtree's embeddings.  Partitioning the
frequent 1-clique roots across worker processes therefore partitions
both the work and the result set exactly.

The pool is fork-friendly: each worker re-creates its miner from the
pickled database once (in the initializer), then mines the root labels
it is handed.  For small databases the serial miner wins — process
startup dominates — so this is for the long-running workloads.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .canonical import Label
from .config import MinerConfig
from .miner import ClanMiner
from .results import MiningResult
from .statistics import MinerStatistics

# Per-worker state, installed by the pool initializer.
_WORKER: Dict[str, object] = {}


def _init_worker(database: GraphDatabase, config: MinerConfig, abs_sup: int) -> None:
    _WORKER["miner"] = ClanMiner(database, config)
    _WORKER["abs_sup"] = abs_sup


def _mine_roots(root_labels: Tuple[Label, ...]) -> MiningResult:
    miner: ClanMiner = _WORKER["miner"]  # type: ignore[assignment]
    abs_sup: int = _WORKER["abs_sup"]  # type: ignore[assignment]
    return miner.mine(abs_sup, root_labels=root_labels)


def _merge_statistics(into: MinerStatistics, part: MinerStatistics) -> None:
    into.merge(part)


def partition_roots(labels: Sequence[Label], chunks: int) -> List[Tuple[Label, ...]]:
    """Split root labels into round-robin chunks.

    Round-robin (rather than contiguous blocks) spreads the typically
    heavy low-alphabet roots across workers.
    """
    if chunks < 1:
        raise MiningError("need at least one chunk")
    buckets: List[List[Label]] = [[] for _ in range(min(chunks, max(1, len(labels))))]
    for index, label in enumerate(labels):
        buckets[index % len(buckets)].append(label)
    return [tuple(bucket) for bucket in buckets if bucket]


def mine_closed_cliques_parallel(
    database: GraphDatabase,
    min_sup: float,
    processes: Optional[int] = None,
    config: Optional[MinerConfig] = None,
    chunks_per_process: int = 4,
) -> MiningResult:
    """Mine closed cliques with a process pool over DFS roots.

    Results are identical to :class:`ClanMiner` (tested); statistics
    are summed across workers.  With ``processes=1`` the pool is
    bypassed entirely, which keeps the call cheap to use in code that
    sometimes runs small inputs.  The candidate-intersection kernel
    (``config.kernel``, bitset by default) travels with the pickled
    config, so every worker runs the same set algebra as the serial
    miner; each worker rebuilds its own per-graph mask indices lazily
    after the fork.
    """
    started = time.perf_counter()
    if config is None:
        config = MinerConfig()
    if not config.structural_redundancy_pruning:
        raise MiningError(
            "parallel mining partitions DFS roots and requires structural "
            "redundancy pruning"
        )
    abs_sup = database.absolute_support(min_sup)
    if processes is None:
        processes = multiprocessing.cpu_count()

    if processes <= 1:
        result = ClanMiner(database, config).mine(abs_sup)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    roots = database.frequent_labels(abs_sup)
    chunks = partition_roots(roots, processes * chunks_per_process)

    merged = MiningResult(min_sup=abs_sup, closed_only=config.closed_only)
    collected = []
    context = multiprocessing.get_context()
    with context.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(database, config, abs_sup),
    ) as pool:
        for partial in pool.imap(_mine_roots, chunks):
            collected.extend(partial)
            _merge_statistics(merged.statistics, partial.statistics)
    # Restore the serial miner's deterministic enumeration order.
    for pattern in sorted(collected, key=lambda p: p.form.labels):
        merged.add(pattern)
    merged.elapsed_seconds = time.perf_counter() - started
    return merged
