"""The CLAN miner (paper Algorithm 1).

``ClanMiner`` depth-first enumerates frequent cliques in canonical-form
order, growing each prefix k-clique by one vertex (plus its k edges)
per step, with

* structural redundancy pruning — extensions only with labels ≥ the
  prefix's last label (Section 4.2),
* pseudo low-degree vertex pruning — per-level core-number index
  (Observation 4.1; consequential in the ``rescan`` strategy),
* the clique closure checking scheme — Lemma 4.3, over the extension
  supports of *all* labels, old and new,
* non-closed prefix pruning — Lemma 4.4 subtree cuts.

Every technique can be disabled through :class:`MinerConfig` for the
ablation study; with structural redundancy pruning off, the miner falls
back to the "maintain the set of already mined cliques" scheme the
paper describes (duplicates are generated, detected, and thrown away).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from ..exceptions import MiningError
from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm, Label
from .config import MinerConfig
from .embeddings import EmbeddingStore, warm_kernel_indexes
from .pattern import CliquePattern
from .results import MiningResult
from .statistics import MinerStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import SearchHooks


class ClanMiner:
    """Frequent closed clique miner over a graph transaction database.

    Examples
    --------
    >>> from repro.graphdb import paper_example_database
    >>> result = ClanMiner(paper_example_database()).mine(min_sup=2)
    >>> sorted(str(p.form) for p in result)
    ['abcd', 'bde']
    """

    def __init__(self, database: GraphDatabase, config: Optional[MinerConfig] = None) -> None:
        self.database = database
        self.config = config if config is not None else MinerConfig()
        # Database-wide indexes, built once per miner (lazily by mine,
        # eagerly by prepare).  The miner snapshots the database at
        # first use — create a new ClanMiner after mutating it, as
        # IncrementalMiner does.
        self._pseudo: Optional[PseudoDatabase] = None
        self._label_supports: Optional[Dict[Label, int]] = None
        #: ``sorted(self._label_supports)``, built alongside it so the
        #: session/executor root-by-root callers do not re-sort the full
        #: label space on every single-root ``mine`` call.
        self._sorted_labels: Optional[Tuple[Label, ...]] = None

    def prepare(self) -> "ClanMiner":
        """Build the label-support, core-number, and kernel indexes now.

        :meth:`mine` builds them lazily (counting one database scan);
        root-by-root callers — :class:`repro.core.session.MiningSession`
        and its pool workers — call this eagerly so repeated ``mine``
        calls on the same miner pay for the indexes once and per-root
        statistics do not depend on which root ran first.  The parallel
        executor calls it in the parent *before* forking, so workers
        inherit every index copy-on-write instead of rebuilding it
        (:func:`repro.core.embeddings.warm_kernel_indexes`).
        """
        if self._label_supports is None:
            self._label_supports = self.database.label_supports()
        if self._sorted_labels is None:
            self._sorted_labels = tuple(sorted(self._label_supports))
        if self._pseudo is None and self.config.low_degree_pruning:
            self._pseudo = PseudoDatabase(self.database)
        warm_kernel_indexes(self.database, self.config.kernel)
        return self

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def mine(
        self,
        min_sup: float,
        root_labels: Optional[Tuple[Label, ...]] = None,
        hooks: Optional["SearchHooks"] = None,
        first_extensions: Optional[Tuple[Label, ...]] = None,
        include_root: bool = True,
    ) -> MiningResult:
        """Mine with the given support threshold (absolute int or fraction).

        Returns a :class:`MiningResult` of closed cliques (or of all
        frequent cliques when ``config.closed_only`` is False), with
        search statistics and elapsed wall-clock time attached.

        ``root_labels`` restricts the search to the DFS subtrees rooted
        at those 1-cliques (canonical forms starting with one of them).
        Every subtree is self-contained — closure checking and pruning
        only consult the subtree's own embeddings — so partitioning the
        roots partitions the result set exactly; this is what
        :func:`repro.core.parallel.mine_closed_cliques_parallel` builds
        on.  Note it requires structural redundancy pruning (otherwise
        patterns are reachable from any of their labels).

        ``first_extensions`` restricts the search one level further: to
        the level-2 subtrees rooted at ``root ◇ β`` for the given β
        labels only (requires exactly one root label).  The same
        self-containedness argument applies one level down, so the
        level-2 subtrees of one root partition the root's output —
        minus the root's own 1-clique pattern and its root-level
        statistics and events, which belong to exactly one split task:
        the one mined with ``include_root=True``.  Callers (the
        work-stealing executor, :mod:`repro.core.executor`) must only
        split roots that are frequent and not Lemma-4.4 pruned, and
        must hand each frequent valid extension to exactly one task.

        ``hooks`` is the session layer's instrumentation object (see
        :class:`repro.core.session.SearchHooks`): when given, it is
        notified at every prefix, emitted pattern, and pruned subtree,
        and may abort the search by raising
        :class:`~repro.core.session.SearchAborted` at a prefix boundary.
        When ``None`` (the default) the search runs exactly as before —
        the only added cost is one ``is not None`` test per hook site.
        """
        started = time.perf_counter()
        abs_sup = self.database.absolute_support(min_sup)
        config = self.config
        if root_labels is not None and not config.structural_redundancy_pruning:
            raise MiningError(
                "root_labels partitioning requires structural redundancy pruning"
            )
        if first_extensions is not None:
            if root_labels is None or len(root_labels) != 1:
                raise MiningError(
                    "first_extensions requires exactly one root label; it splits "
                    "a single DFS root into its level-2 subtrees"
                )
        elif not include_root:
            raise MiningError(
                "include_root=False only makes sense with first_extensions; "
                "a whole-subtree mine always owns its root"
            )
        stats = MinerStatistics()
        result = MiningResult(min_sup=abs_sup, closed_only=config.closed_only, statistics=stats)

        pseudo = None
        if config.low_degree_pruning:
            if self._pseudo is None:
                self._pseudo = PseudoDatabase(self.database)
            pseudo = self._pseudo
        if self._label_supports is None:
            self._label_supports = self.database.label_supports()
            stats.database_scans += 1
        if self._sorted_labels is None:
            self._sorted_labels = tuple(sorted(self._label_supports))
        label_supports = self._label_supports
        seen_forms: Set[Tuple[Label, ...]] = set()
        wanted = set(root_labels) if root_labels is not None else None

        for label in self._sorted_labels:
            if wanted is not None and label not in wanted:
                continue
            if label_supports[label] < abs_sup:
                stats.infrequent_extensions += 1
                continue
            store = EmbeddingStore.for_label(
                self.database, pseudo, label, config.embedding_strategy, config.kernel
            )
            if first_extensions is None:
                self._recurse(
                    CanonicalForm((label,)), store, abs_sup, result, stats, seen_forms, hooks
                )
            else:
                self._mine_restricted(
                    CanonicalForm((label,)),
                    store,
                    abs_sup,
                    result,
                    stats,
                    seen_forms,
                    hooks,
                    tuple(first_extensions),
                    include_root,
                )

        result.elapsed_seconds = time.perf_counter() - started
        stats.cpu_seconds = result.elapsed_seconds
        return result

    # ------------------------------------------------------------------
    # Root splitting support (the work-stealing executor's primitive)
    # ------------------------------------------------------------------
    def root_extension_plan(self, min_sup: float, root: Label) -> list:
        """The frequent valid level-2 extensions of one DFS root.

        Returns ``[(label, support), ...]`` for every frequent extension
        label ≥ ``root`` — the labels whose level-2 subtrees together
        with the root's own pattern make up the root's entire output.
        Returns ``[]`` when the root cannot (or must not) be split:
        infrequent root, Lemma 4.4 prunes the whole subtree, or the
        size ceiling forbids 2-cliques.  The executor uses a non-empty
        plan to re-enqueue a heavy root as independent
        ``first_extensions`` tasks; an empty plan means "mine the root
        whole".

        Does not touch mining statistics: split planning is scheduler
        overhead, and per-root statistics must sum to the serial run's.
        """
        config = self.config
        if not config.structural_redundancy_pruning:
            raise MiningError(
                "root splitting requires structural redundancy pruning"
            )
        if config.max_size is not None and config.max_size <= 1:
            return []
        self.prepare()
        abs_sup = self.database.absolute_support(min_sup)
        if self._label_supports.get(root, 0) < abs_sup:
            return []
        pseudo = self._pseudo if config.low_degree_pruning else None
        store = EmbeddingStore.for_label(
            self.database, pseudo, root, config.embedding_strategy, config.kernel
        )
        if config.max_embeddings is not None and store.embedding_count > config.max_embeddings:
            return []
        frequent_extensions, _, _ = store.extension_plan(abs_sup)
        if config.nonclosed_prefix_pruning:
            if store.nonclosed_extension_label(root) is not None:
                return []
        return [(label, sup) for label, sup in frequent_extensions if label >= root]

    # ------------------------------------------------------------------
    # Recursive search (Algorithm 1)
    # ------------------------------------------------------------------
    def _recurse(
        self,
        form: CanonicalForm,
        store: EmbeddingStore,
        abs_sup: int,
        result: MiningResult,
        stats: MinerStatistics,
        seen_forms: Set[Tuple[Label, ...]],
        hooks: Optional["SearchHooks"] = None,
    ) -> None:
        config = self.config
        stats.record_prefix(form.size)
        stats.record_embeddings(store.embedding_count)
        if hooks is not None:
            hooks.enter_prefix(form, store)
        if config.max_embeddings is not None and store.embedding_count > config.max_embeddings:
            raise MiningError(
                f"prefix {form} materialised {store.embedding_count} embeddings, "
                f"exceeding the max_embeddings bound of {config.max_embeddings}"
            )

        if not config.structural_redundancy_pruning:
            # Fallback duplicate detection: the paper's "simple way".
            if form.labels in seen_forms:
                stats.duplicates_collapsed += 1
                return
            seen_forms.add(form.labels)
        stats.record_frequent(form.size)

        # Lines 01-03: one scan finds every extension label's support.
        # The store returns the digest the recursion consumes: frequent
        # extensions (label, support), the infrequent count, and the
        # Lemma 4.3 closure verdict (some extension ties the support).
        frequent_extensions, n_infrequent, blocked = store.extension_plan(abs_sup)
        stats.database_scans += 1

        # Lines 04-05: non-closed prefix pruning (Lemma 4.4).
        if config.nonclosed_prefix_pruning:
            blocking = store.nonclosed_extension_label(form.last_label)
            if blocking is not None:
                stats.nonclosed_prefix_prunes += 1
                if hooks is not None:
                    hooks.pruned(form, "nonclosed_prefix")
                return

        # Lines 06-07: closure check (Lemma 4.3) and output.
        if config.closed_only:
            if not blocked:
                self._emit(form, store, result, stats, hooks)
            else:
                stats.closure_rejections += 1
        else:
            self._emit(form, store, result, stats, hooks)

        # Lines 08-09: recurse into each frequent valid extension.
        if config.max_size is not None and form.size >= config.max_size:
            return
        last_label = form.last_label if form.size else None
        stats.infrequent_extensions += n_infrequent
        for label, ext_support in frequent_extensions:
            if config.structural_redundancy_pruning:
                if last_label is not None and label < last_label:
                    stats.redundancy_skips += 1
                    continue
                child_store = store.extend(label, last_label)
                child_form = form.extend(label)
            else:
                child_store = store.extend_unordered(label)
                child_form = CanonicalForm.from_labels(form.labels + (label,))
            if child_store.support != ext_support:  # pragma: no cover - invariant
                raise MiningError(
                    f"extension scan predicted support {ext_support} for "
                    f"{child_form} but materialisation found {child_store.support}"
                )
            self._recurse(
                child_form, child_store, abs_sup, result, stats, seen_forms, hooks
            )

    # ------------------------------------------------------------------
    def _mine_restricted(
        self,
        form: CanonicalForm,
        store: EmbeddingStore,
        abs_sup: int,
        result: MiningResult,
        stats: MinerStatistics,
        seen_forms: Set[Tuple[Label, ...]],
        hooks: Optional["SearchHooks"],
        first_extensions: Tuple[Label, ...],
        include_root: bool,
    ) -> None:
        """One split task: selected level-2 subtrees of one DFS root.

        Mirrors :meth:`_recurse` at the root level, then descends only
        into ``first_extensions``.  Exactness is the root-partitioning
        argument one level down: under structural redundancy pruning
        the subtree rooted at ``root ◇ β`` consults only its own
        embeddings, so level-2 subtrees are independent.  Root-level
        work — the prefix/frequent/scan statistics, the root's events,
        Lemma 4.4, the root's own pattern — happens exactly once across
        a root's split tasks, in the one with ``include_root=True``;
        sibling tasks extend straight into their subtrees.  Summing the
        split tasks' statistics therefore reproduces the serial root's
        counters exactly.
        """
        config = self.config
        last_label = form.last_label
        if include_root:
            stats.record_prefix(form.size)
            stats.record_embeddings(store.embedding_count)
            if hooks is not None:
                hooks.enter_prefix(form, store)
            if config.max_embeddings is not None and store.embedding_count > config.max_embeddings:
                raise MiningError(
                    f"prefix {form} materialised {store.embedding_count} embeddings, "
                    f"exceeding the max_embeddings bound of {config.max_embeddings}"
                )
            stats.record_frequent(form.size)
            frequent_extensions, n_infrequent, blocked = store.extension_plan(abs_sup)
            stats.database_scans += 1
            if config.nonclosed_prefix_pruning:
                blocking = store.nonclosed_extension_label(last_label)
                if blocking is not None:  # pragma: no cover - splitter precondition
                    raise MiningError(
                        f"split task for root {form} reached a Lemma 4.4 prune; "
                        f"the splitter must not split pruned roots"
                    )
            if config.closed_only:
                if not blocked:
                    self._emit(form, store, result, stats, hooks)
                else:
                    stats.closure_rejections += 1
            else:
                self._emit(form, store, result, stats, hooks)
            if config.max_size is not None and form.size >= config.max_size:
                return
            stats.infrequent_extensions += n_infrequent
            wanted = set(first_extensions)
            for label, ext_support in frequent_extensions:
                if label < last_label:
                    stats.redundancy_skips += 1
                    continue
                if label not in wanted:
                    continue
                child_store = store.extend(label, last_label)
                child_form = form.extend(label)
                if child_store.support != ext_support:  # pragma: no cover - invariant
                    raise MiningError(
                        f"extension scan predicted support {ext_support} for "
                        f"{child_form} but materialisation found {child_store.support}"
                    )
                self._recurse(
                    child_form, child_store, abs_sup, result, stats, seen_forms, hooks
                )
            return
        if config.max_size is not None and form.size >= config.max_size:
            return
        for label in first_extensions:
            if label < last_label:  # pragma: no cover - splitter precondition
                raise MiningError(
                    f"split extension {label!r} sorts below root {last_label!r}; "
                    f"structural redundancy pruning forbids it"
                )
            child_store = store.extend(label, last_label)
            child_form = form.extend(label)
            if child_store.support < abs_sup:  # pragma: no cover - splitter precondition
                raise MiningError(
                    f"split task extension {child_form} is infrequent "
                    f"({child_store.support} < {abs_sup}); the splitter must "
                    f"only hand out frequent extensions"
                )
            self._recurse(
                child_form, child_store, abs_sup, result, stats, seen_forms, hooks
            )

    # ------------------------------------------------------------------
    def _emit(
        self,
        form: CanonicalForm,
        store: EmbeddingStore,
        result: MiningResult,
        stats: MinerStatistics,
        hooks: Optional["SearchHooks"] = None,
    ) -> None:
        """Report one pattern, honouring the size window."""
        config = self.config
        if form.size < config.min_size:
            return
        if config.max_size is not None and form.size > config.max_size:
            return
        pattern = CliquePattern(
            form=form,
            support=store.support,
            transactions=store.transactions(),
            witnesses=store.witnesses() if config.collect_witnesses else {},
        )
        result.add(pattern)
        if config.closed_only:
            stats.closed_cliques += 1
        if hooks is not None:
            hooks.pattern(pattern)


def mine_closed_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
    config: Optional[MinerConfig] = None,
) -> MiningResult:
    """One-call convenience wrapper; soft-legacy, kept indefinitely.

    New code can call :func:`repro.mine` (this is now a thin wrapper
    over it with ``task="closed"``), which also exposes streaming,
    budgets, and the other mining tasks behind one signature.

    When both ``config`` and a ``min_size``/``max_size`` window are
    given, the window is merged into the config; contradictory values
    raise :class:`MiningError` (historically the window was silently
    ignored).
    """
    from .api import mine

    return mine(
        database,
        min_sup,
        task="closed",
        min_size=min_size,
        max_size=max_size,
        config=config,
    )


def mine_frequent_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
    config: Optional[MinerConfig] = None,
) -> MiningResult:
    """Mine the complete frequent (not only closed) clique set.

    Soft-legacy: a thin wrapper over :func:`repro.mine` with
    ``task="frequent"``; kept indefinitely for existing callers.
    ``config``/window merging follows :func:`mine_closed_cliques`.
    """
    from .api import mine

    return mine(
        database,
        min_sup,
        task="frequent",
        min_size=min_size,
        max_size=max_size,
        config=config,
    )
