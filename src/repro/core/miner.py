"""The CLAN miner (paper Algorithm 1).

``ClanMiner`` is the closed/frequent specialisation of the task-
parameterised :class:`repro.core.engine.MiningEngine`, which owns the
depth-first canonical-form enumeration:

* structural redundancy pruning — extensions only with labels ≥ the
  prefix's last label (Section 4.2),
* pseudo low-degree vertex pruning — per-level core-number index
  (Observation 4.1; consequential in the ``rescan`` strategy),
* the clique closure checking scheme — Lemma 4.3, over the extension
  supports of *all* labels, old and new,
* non-closed prefix pruning — Lemma 4.4 subtree cuts.

Every technique can be disabled through :class:`MinerConfig` for the
ablation study; with structural redundancy pruning off, the miner falls
back to the "maintain the set of already mined cliques" scheme the
paper describes (duplicates are generated, detected, and thrown away).
The maximal and top-k tasks run the same engine under their own
strategies (:mod:`repro.core.engine`).
"""

from __future__ import annotations

from typing import Optional

from ..graphdb.database import GraphDatabase
from .config import MinerConfig
from .engine import ClosedStrategy, FrequentStrategy, MiningEngine
from .results import MiningResult


class ClanMiner(MiningEngine):
    """Frequent closed clique miner over a graph transaction database.

    A :class:`~repro.core.engine.MiningEngine` whose strategy follows
    ``config.closed_only``: :class:`~repro.core.engine.ClosedStrategy`
    (the default) or :class:`~repro.core.engine.FrequentStrategy`.

    Examples
    --------
    >>> from repro.graphdb import paper_example_database
    >>> result = ClanMiner(paper_example_database()).mine(min_sup=2)
    >>> sorted(str(p.form) for p in result)
    ['abcd', 'bde']
    """

    def __init__(self, database: GraphDatabase, config: Optional[MinerConfig] = None) -> None:
        resolved = config if config is not None else MinerConfig()
        strategy = ClosedStrategy() if resolved.closed_only else FrequentStrategy()
        super().__init__(database, resolved, strategy=strategy)


def mine_closed_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
    config: Optional[MinerConfig] = None,
) -> MiningResult:
    """One-call convenience wrapper; soft-legacy, kept indefinitely.

    New code can call :func:`repro.mine` (this is now a thin wrapper
    over it with ``task="closed"``), which also exposes streaming,
    budgets, and the other mining tasks behind one signature.

    When both ``config`` and a ``min_size``/``max_size`` window are
    given, the window is merged into the config; contradictory values
    raise :class:`MiningError` (historically the window was silently
    ignored).
    """
    from .api import MiningRequest, mine

    return mine(
        database,
        MiningRequest.from_options(
            min_sup,
            task="closed",
            min_size=min_size,
            max_size=max_size,
            config=config,
        ),
    )


def mine_frequent_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
    config: Optional[MinerConfig] = None,
) -> MiningResult:
    """Mine the complete frequent (not only closed) clique set.

    Soft-legacy: a thin wrapper over :func:`repro.mine` with
    ``task="frequent"``; kept indefinitely for existing callers.
    ``config``/window merging follows :func:`mine_closed_cliques`.
    """
    from .api import MiningRequest, mine

    return mine(
        database,
        MiningRequest.from_options(
            min_sup,
            task="frequent",
            min_size=min_size,
            max_size=max_size,
            config=config,
        ),
    )
