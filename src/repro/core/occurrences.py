"""Occurrence counting and embedding enumeration for clique patterns.

Section 4.3 of the paper reasons about *occurrences* (distinct
embeddings) as opposed to transaction support — e.g. "bd:2 has totally
four occurrences" — to show why occurrence-match-based pruning is
unsound for cliques.  These utilities make that notion first-class:

* enumerate every embedding of a given canonical form in a graph or a
  database,
* count occurrences per transaction and in total,
* compute the *occurrence support* (sum of per-transaction occurrence
  counts), an alternative support measure some applications use.

Enumeration reuses the miner's embedding machinery, so the per-label
ascending-id discipline guarantees each vertex set appears exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .canonical import CanonicalForm
from .embeddings import EmbeddingStore


def embedding_store_for(
    database: GraphDatabase,
    form: CanonicalForm,
    pseudo: Optional[PseudoDatabase] = None,
) -> EmbeddingStore:
    """Build the full embedding store of a canonical form.

    Grows the form label by label exactly as the miner would; the
    result holds every embedding (vertex set) of the pattern in every
    transaction.
    """
    if form.size == 0:
        return EmbeddingStore(database, pseudo, "cached", 0, {})
    if pseudo is None:
        pseudo = PseudoDatabase(database)
    store = EmbeddingStore.for_label(database, pseudo, form.labels[0])
    last = form.labels[0]
    for label in form.labels[1:]:
        store = store.extend(label, last)
        last = label
    return store


def iter_embeddings(
    database: GraphDatabase, form: CanonicalForm
) -> Iterator[Tuple[int, Tuple[int, ...]]]:
    """Yield ``(transaction id, sorted vertex tuple)`` per occurrence."""
    store = embedding_store_for(database, form)
    for tid, vertices in store.iter_embeddings():
        yield tid, tuple(sorted(vertices))


def embeddings_in_graph(graph: Graph, form: CanonicalForm) -> List[Tuple[int, ...]]:
    """All embeddings of a pattern in a single graph."""
    database = GraphDatabase([graph.copy()])
    return [vertices for _, vertices in iter_embeddings(database, form)]


def occurrence_counts(
    database: GraphDatabase, form: CanonicalForm
) -> Dict[int, int]:
    """Occurrences per transaction (transactions with zero are omitted)."""
    counts: Dict[int, int] = {}
    for tid, _ in iter_embeddings(database, form):
        counts[tid] = counts.get(tid, 0) + 1
    return counts


def total_occurrences(database: GraphDatabase, form: CanonicalForm) -> int:
    """Total occurrences across the database (the paper's 'four occurrences')."""
    return sum(occurrence_counts(database, form).values())


def transaction_support(database: GraphDatabase, form: CanonicalForm) -> int:
    """The paper's support measure: transactions with >= 1 embedding."""
    return len(occurrence_counts(database, form))


def occurrence_report(
    database: GraphDatabase, forms: List[CanonicalForm]
) -> str:
    """Aligned text table: form, transaction support, total occurrences."""
    rows = []
    for form in forms:
        counts = occurrence_counts(database, form)
        rows.append((str(form), len(counts), sum(counts.values())))
    width = max((len(r[0]) for r in rows), default=4)
    lines = [f"{'form'.ljust(width)}  support  occurrences"]
    for name, support, occurrences in rows:
        lines.append(f"{name.ljust(width)}  {support:7d}  {occurrences:11d}")
    return "\n".join(lines)
