"""Top-k closed clique mining.

A common downstream ask (and the spirit of the paper's Figure 5, which
reports only the maximum clique): return the k *largest* frequent
closed cliques rather than all of them.  Rather than mining everything
and truncating, the search carries a branch-and-bound cut:

    a prefix clique C can only grow by vertices whose labels are
    frequent valid extensions, so

        size(C) + (# frequent valid extension labels, counted with
                   per-transaction multiplicity bounds)

    upper-bounds the size of any clique in C's subtree.  Subtrees whose
    bound cannot beat the current k-th best size are skipped.

The bound uses label multiplicities: an extension label β can
contribute at most ``min over supporting transactions of the largest
number of β-vertices simultaneously adjacent to one embedding`` — we
use the cheaper safe bound of the per-transaction candidate counts.

Results are identical to "mine everything, keep the k largest" (tested
by the property suite); the bound only prunes work.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Tuple

from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm, Label
from .closure import is_closed
from .embeddings import EmbeddingStore
from .pattern import CliquePattern
from .results import MiningResult
from .statistics import MinerStatistics


class _TopKHeap:
    """Keeps the k best (size, form) entries; min-heap on size."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[Tuple[int, Tuple[Label, ...], CliquePattern]] = []

    def offer(self, pattern: CliquePattern) -> None:
        # Tie-break on the reversed label tuple so the heap order is
        # total; the reversed-ness is arbitrary but deterministic.
        entry = (pattern.size, tuple(reversed(pattern.labels)), pattern)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry[:2] > self._heap[0][:2]:
            heapq.heapreplace(self._heap, entry)

    def threshold(self) -> int:
        """Sizes at or below this cannot improve the heap once full."""
        if len(self._heap) < self.k:
            return 0
        return self._heap[0][0]

    def patterns(self) -> List[CliquePattern]:
        """The kept patterns, largest first (ties by the heap's order)."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (e[0], e[1]), reverse=True)
        ]


def _extension_multiplicity_bound(
    store: EmbeddingStore, valid_labels: List[Label]
) -> int:
    """Upper bound on how many more vertices this subtree can add.

    For each supporting transaction, no extension can use more vertices
    than that transaction has candidate vertices with valid labels; the
    subtree-wide bound is the minimum over transactions that must keep
    supporting the pattern — conservatively, the maximum over
    transactions (support may drop to min_sup of the current set).
    """
    valid = set(valid_labels)
    best = 0
    for tid, records in store.by_transaction.items():
        graph = store.database[tid]
        per_transaction = 0
        for record in records:
            candidates = store._candidates(tid, record)
            count = sum(1 for v in candidates if graph.label(v) in valid)
            per_transaction = max(per_transaction, count)
        best = max(best, per_transaction)
    return best


def mine_top_k_closed_cliques(
    database: GraphDatabase,
    min_sup: float,
    k: int,
    min_size: int = 1,
) -> MiningResult:
    """Mine the k largest frequent closed cliques.

    Ties at the k-th size are broken deterministically by canonical
    form; the result is sorted largest first.  ``min_size`` additionally
    floors the sizes considered.
    """
    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    stats = MinerStatistics()
    heap = _TopKHeap(max(1, k))
    pseudo = PseudoDatabase(database)
    label_supports = database.label_supports()
    stats.database_scans += 1

    def recurse(form: CanonicalForm, store: EmbeddingStore) -> None:
        stats.record_prefix(form.size)
        stats.record_embeddings(store.embedding_count)
        stats.record_frequent(form.size)
        extension_supports = store.extension_supports()
        stats.database_scans += 1

        blocking = store.nonclosed_extension_label(form.last_label)
        if blocking is not None:
            stats.nonclosed_prefix_prunes += 1
            return

        if form.size >= min_size and is_closed(store.support, extension_supports):
            heap.offer(
                CliquePattern(
                    form=form,
                    support=store.support,
                    transactions=store.transactions(),
                    witnesses=store.witnesses(),
                )
            )
            stats.closed_cliques += 1
        elif form.size >= min_size:
            stats.closure_rejections += 1

        valid = [
            label
            for label in sorted(extension_supports)
            if extension_supports[label] >= abs_sup and label >= form.last_label
        ]
        if not valid:
            return
        # Branch and bound: can this subtree still reach the heap?  The
        # cut is strict because size ties are broken by label order, so
        # a subtree that can only *match* the k-th size may still win.
        bound = form.size + _extension_multiplicity_bound(store, valid)
        if bound < heap.threshold():
            stats.redundancy_skips += 1  # reuse the counter for bound cuts
            return
        for label in valid:
            recurse(form.extend(label), store.extend(label, form.last_label))

    for label in sorted(label_supports):
        if label_supports[label] < abs_sup:
            continue
        store = EmbeddingStore.for_label(database, pseudo, label)
        recurse(CanonicalForm((label,)), store)

    result = MiningResult(min_sup=abs_sup, closed_only=True, statistics=stats)
    for pattern in heap.patterns():
        result.add(pattern)
    result.elapsed_seconds = time.perf_counter() - started
    return result
