"""Top-k closed clique mining.

A common downstream ask (and the spirit of the paper's Figure 5, which
reports only the maximum clique): return the k *largest* frequent
closed cliques rather than all of them.  Rather than mining everything
and truncating, the search carries a branch-and-bound cut:

    a prefix clique C can only grow by vertices whose labels are
    frequent valid extensions, so

        size(C) + (# frequent valid extension labels, counted with
                   per-transaction multiplicity bounds)

    upper-bounds the size of any clique in C's subtree.  Subtrees whose
    bound cannot beat the current k-th best size are skipped.

The bound uses label multiplicities: an extension label β can
contribute at most ``min over supporting transactions of the largest
number of β-vertices simultaneously adjacent to one embedding`` — we
use the cheaper safe bound of the per-transaction candidate counts.

Results are identical to "mine everything, keep the k largest" (tested
by the property suite); the bound only prunes work.

Since the engine refactor this module is a thin wrapper: the search
itself is :class:`repro.core.engine.MiningEngine` running
:class:`repro.core.engine.TopKStrategy` (which hosts the heap and the
bound), so top-k mining inherits the bitset kernels, sessions, and the
cache's exact-replay tier through :func:`repro.mine`.  The bound's
bookkeeping is kept *per DFS root* and the global k best are selected
at merge time (:func:`repro.core.engine.finalize_patterns`), which is
what keeps serial and warm-cache runs byte-identical.
"""

from __future__ import annotations

from ..graphdb.database import GraphDatabase
from .engine import _TopKHeap, _extension_multiplicity_bound  # noqa: F401 - soft-legacy re-export
from .results import MiningResult


def mine_top_k_closed_cliques(
    database: GraphDatabase,
    min_sup: float,
    k: int,
    min_size: int = 1,
) -> MiningResult:
    """Mine the k largest frequent closed cliques.

    Ties at the k-th size are broken deterministically by canonical
    form; the result is sorted largest first.  ``min_size`` additionally
    floors the sizes considered.  Soft-legacy: a thin wrapper over
    :func:`repro.mine` with ``task="topk"``.
    """
    from .api import MiningRequest, mine

    return mine(
        database,
        MiningRequest.from_options(min_sup, task="topk", k=k, min_size=min_size),
    )
