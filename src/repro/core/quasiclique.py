"""Closed quasi-clique mining — the paper's future-work extension (§6).

The paper closes by proposing to extend CLAN from exact cliques to
*quasi-cliques*.  This module explores that direction with the standard
degree-based definition (as in Pei et al., ICDE'05): a vertex set S of
size n in a transaction is a **γ-quasi-clique** if every vertex of S is
adjacent to at least ``ceil(γ · (n − 1))`` other vertices of S.  With
γ = 1.0 this is exactly a clique and the results coincide with CLAN's.

Patterns remain label multisets: a transaction supports pattern P if it
contains a γ-quasi-clique whose sorted labels equal P.  Unlike cliques,

* the canonical-form shortcut no longer certifies isomorphism of the
  *topology* — only of the label bag — which matches the paper's
  pattern definition (topology class + labels) for the clique case;
* downward closure fails (subsets of quasi-cliques need not be
  quasi-cliques), so the search enumerates vertex sets per transaction
  with feasibility bounds instead of growing pattern prefixes.

The implementation is deliberately bounded: ``max_size`` is mandatory
and γ must be ≥ 0.5 (which guarantees connectivity and diameter ≤ 2,
the usual tractable regime).  It targets the scale of the paper's
chemical data and the per-group structure of market graphs, not
arbitrary dense graphs.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .canonical import CanonicalForm, Label
from .pattern import CliquePattern
from .results import MiningResult


def required_degree(gamma: float, size: int) -> int:
    """Minimum in-set degree for a member of a γ-quasi-clique of ``size``."""
    if size <= 1:
        return 0
    return ceil(gamma * (size - 1) - 1e-9)


def is_quasi_clique(graph: Graph, vertices: FrozenSet[int], gamma: float) -> bool:
    """Check the γ-quasi-clique condition for a vertex set."""
    need = required_degree(gamma, len(vertices))
    return all(len(graph.neighbors(v) & vertices) >= need for v in vertices)


def _feasible(
    graph: Graph,
    members: Tuple[int, ...],
    max_size: int,
    gamma: float,
) -> bool:
    """Optimistic bound: can ``members`` still grow into a quasi-clique?

    For some final size n ≤ max_size, every current member v would need
    ``required_degree(gamma, n)`` in-set neighbours; at best v gains all
    ``n - |S|`` future vertices as neighbours.
    """
    member_set = set(members)
    degrees = [len(graph.neighbors(v) & member_set) for v in members]
    size = len(members)
    for n in range(size, max_size + 1):
        need = required_degree(gamma, n)
        slack = n - size
        if all(d + slack >= need for d in degrees):
            return True
    return False


def quasi_cliques_in_graph(
    graph: Graph,
    gamma: float,
    min_size: int,
    max_size: int,
) -> Iterator[FrozenSet[int]]:
    """Enumerate all γ-quasi-cliques of a single transaction, each once.

    Vertex sets are generated in ascending-id DFS order.  γ ≥ 0.5 keeps
    every quasi-clique connected (each vertex reaches more than half of
    the others), so candidates can be restricted to the neighbourhood
    of the current set.
    """
    if not 0.5 <= gamma <= 1.0:
        raise MiningError(f"gamma must be in [0.5, 1.0], got {gamma}")
    if max_size < min_size or min_size < 1:
        raise MiningError(f"invalid size window [{min_size}, {max_size}]")

    order = sorted(graph.vertices())

    def grow(
        members: Tuple[int, ...], member_set: Set[int], universe: List[int]
    ) -> Iterator[FrozenSet[int]]:
        size = len(members)
        if size >= min_size:
            frozen = frozenset(member_set)
            if is_quasi_clique(graph, frozen, gamma):
                yield frozen
        if size >= max_size:
            return
        last = members[-1]
        for vertex in universe:
            if vertex <= last or vertex in member_set:
                continue
            grown = members + (vertex,)
            if _feasible(graph, grown, max_size, gamma):
                yield from grow(grown, member_set | {vertex}, universe)

    for start in order:
        if min_size == 1:
            yield frozenset((start,))
        if max_size >= 2:
            # γ ≥ 0.5 bounds the quasi-clique's internal diameter by 2,
            # so every member lies within two hops of the (minimum-id)
            # start vertex in the whole graph as well.  Prefixes are
            # generated in ascending id order, which deduplicates sets.
            ball = set(graph.neighbors(start))
            for neighbor in list(ball):
                ball |= graph.neighbors(neighbor)
            ball.discard(start)
            universe = sorted(v for v in ball if v > start)
            yield from grow((start,), {start}, universe)


def mine_closed_quasi_cliques(
    database: GraphDatabase,
    min_sup: float,
    gamma: float,
    min_size: int = 2,
    max_size: int = 6,
    closed_only: bool = True,
) -> MiningResult:
    """Mine frequent (closed) γ-quasi-clique patterns.

    Enumerates quasi-cliques per transaction, aggregates supports by
    canonical label form, filters by frequency, and (optionally) keeps
    only patterns with no proper super-pattern of equal support —
    mirroring the paper's closedness definition verbatim.

    With ``gamma=1.0`` and matching size windows the closed result
    equals :func:`repro.core.miner.mine_closed_cliques`'s (tested).
    """
    import time

    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    supports: Dict[Tuple[Label, ...], Set[int]] = {}
    witnesses: Dict[Tuple[Label, ...], Dict[int, Tuple[int, ...]]] = {}
    for tid, graph in enumerate(database):
        for vertex_set in quasi_cliques_in_graph(graph, gamma, min_size, max_size):
            labels = graph.label_multiset(vertex_set)
            supports.setdefault(labels, set()).add(tid)
            witnesses.setdefault(labels, {}).setdefault(tid, tuple(sorted(vertex_set)))

    frequent = {
        labels: tids for labels, tids in supports.items() if len(tids) >= abs_sup
    }
    patterns: List[CliquePattern] = []
    for labels in sorted(frequent):
        tids = frequent[labels]
        patterns.append(
            CliquePattern(
                form=CanonicalForm(labels),
                support=len(tids),
                transactions=tuple(sorted(tids)),
                witnesses={tid: witnesses[labels][tid] for tid in sorted(tids)},
            )
        )

    if closed_only:
        patterns = [
            p
            for p in patterns
            if not any(q.support == p.support and p.form.is_proper_subclique_of(q.form)
                       for q in patterns)
        ]

    result = MiningResult(
        patterns,
        min_sup=abs_sup,
        closed_only=closed_only,
        elapsed_seconds=time.perf_counter() - started,
    )
    return result
