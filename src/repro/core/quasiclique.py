"""Closed quasi-clique mining — the paper's future-work extension (§6).

The paper closes by proposing to extend CLAN from exact cliques to
*quasi-cliques*.  This module implements that direction with the
standard degree-based definition (as in Pei et al., ICDE'05): a vertex
set S of size n in a transaction is a **γ-quasi-clique** if every
vertex of S is adjacent to at least ``ceil(γ · (n − 1))`` other
vertices of S.  With γ = 1.0 this is exactly a clique and the results
coincide with CLAN's.

Patterns remain label multisets: a transaction supports pattern P if it
contains a γ-quasi-clique whose sorted labels equal P.  Unlike cliques,

* the canonical-form shortcut no longer certifies isomorphism of the
  *topology* — only of the label bag — which matches the paper's
  pattern definition (topology class + labels) for the clique case;
* downward closure fails for the quasi-clique *property* (subsets of
  quasi-cliques need not be quasi-cliques), so the search cannot grow
  quasi-cliques directly.  What **is** hereditary is *feasibility*: "S
  can still reach some quasi-clique size ≤ max_size" survives removing
  any single vertex, because shrinking S only loosens every member's
  degree deficit.  :class:`QuasiEmbeddingStore` therefore stores every
  canonical embedding whose vertex set is feasible, which restores the
  exact anti-monotone support recursion the engine's DFS needs;
* Lemma 4.3/4.4 closure reasoning is *relaxed*, not inherited:
  pattern-level closedness is no longer decidable per prefix, so the
  closed filter runs globally in
  :func:`repro.core.engine.finalize_patterns` (sound at every merge
  site because the filter composes over any partition of the emitted
  patterns — the ⊂-maximal killer of a killed pattern is itself
  unkilled, so it survives every piecewise filter and still kills at
  the final one).  In place of the Lemma 4.4 subtree cut,
  :meth:`QuasiTaskStrategy.prune_subtree` applies a **c-closure bound**
  (Husić & Roughgarden): two non-adjacent members u, v of a final
  γ-quasi-clique of size n must share ``2·ceil(γ(n−1)) − n + 2`` common
  neighbours, so an embedding whose worst non-adjacent pair falls below
  that bound for every reachable size can never grow into a result.

``task="quasi"`` runs on the shared :class:`~repro.core.engine
.MiningEngine` stack — bitset/set kernels, the work-stealing executor,
sessions, and the mining cache — via :class:`QuasiTaskStrategy`; see
:func:`repro.core.api.mine`.  γ must be ≥ 0.5 (which guarantees
connectivity and diameter ≤ 2, the usual tractable regime) and
``max_size`` is mandatory: every feasibility and c-closure bound is
anchored to a finite size ceiling.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..exceptions import MiningError
from ..graphdb.bitset import popcount
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .canonical import CanonicalForm, Label
from .config import MinerConfig
from .embeddings import BITSET, SET, SLAB
from .engine import MiningEngine, TaskStrategy, engine_for_task, finalize_patterns
from .pattern import CliquePattern
from .results import MiningResult


def required_degree(gamma: float, size: int) -> int:
    """Minimum in-set degree for a member of a γ-quasi-clique of ``size``."""
    if size <= 1:
        return 0
    return ceil(gamma * (size - 1) - 1e-9)


def is_quasi_clique(graph: Graph, vertices: FrozenSet[int], gamma: float) -> bool:
    """Check the γ-quasi-clique condition for a vertex set."""
    need = required_degree(gamma, len(vertices))
    return all(len(graph.neighbors(v) & vertices) >= need for v in vertices)


def _feasible(
    graph: Graph,
    members: Tuple[int, ...],
    max_size: int,
    gamma: float,
) -> bool:
    """Optimistic bound: can ``members`` still grow into a quasi-clique?

    For some final size n ≤ max_size, every current member v would need
    ``required_degree(gamma, n)`` in-set neighbours; at best v gains all
    ``n - |S|`` future vertices as neighbours.
    """
    member_set = set(members)
    degrees = [len(graph.neighbors(v) & member_set) for v in members]
    size = len(members)
    for n in range(size, max_size + 1):
        need = required_degree(gamma, n)
        slack = n - size
        if all(d + slack >= need for d in degrees):
            return True
    return False


def quasi_cliques_in_graph(
    graph: Graph,
    gamma: float,
    min_size: int,
    max_size: int,
) -> Iterator[FrozenSet[int]]:
    """Enumerate all γ-quasi-cliques of a single transaction, each once.

    Vertex sets are generated in ascending-id DFS order.  γ ≥ 0.5 keeps
    every quasi-clique connected (each vertex reaches more than half of
    the others), so candidates can be restricted to the neighbourhood
    of the current set.  This is the reference enumerator behind the
    brute-force oracle (:func:`repro.baselines.bruteforce
    .bruteforce_quasi_cliques`); the engine path uses
    :class:`QuasiEmbeddingStore` instead.
    """
    if not 0.5 <= gamma <= 1.0:
        raise MiningError(f"gamma must be in [0.5, 1.0], got {gamma}")
    if max_size < min_size or min_size < 1:
        raise MiningError(f"invalid size window [{min_size}, {max_size}]")

    order = sorted(graph.vertices())

    def grow(
        members: Tuple[int, ...], member_set: Set[int], universe: List[int]
    ) -> Iterator[FrozenSet[int]]:
        size = len(members)
        if size >= min_size:
            frozen = frozenset(member_set)
            if is_quasi_clique(graph, frozen, gamma):
                yield frozen
        if size >= max_size:
            return
        last = members[-1]
        for vertex in universe:
            if vertex <= last or vertex in member_set:
                continue
            grown = members + (vertex,)
            if _feasible(graph, grown, max_size, gamma):
                yield from grow(grown, member_set | {vertex}, universe)

    for start in order:
        if min_size == 1:
            yield frozenset((start,))
        if max_size >= 2:
            # γ ≥ 0.5 bounds the quasi-clique's internal diameter by 2,
            # so every member lies within two hops of the (minimum-id)
            # start vertex in the whole graph as well.  Prefixes are
            # generated in ascending id order, which deduplicates sets.
            ball = set(graph.neighbors(start))
            for neighbor in list(ball):
                ball |= graph.neighbors(neighbor)
            ball.discard(start)
            universe = sorted(v for v in ball if v > start)
            yield from grow((start,), {start}, universe)


# ----------------------------------------------------------------------
# Feasibility / c-closure threshold precomputation
# ----------------------------------------------------------------------
def _degree_needs(gamma: float, max_size: int) -> Tuple[int, ...]:
    """``needs[n]`` = in-set degree a member of a size-n result needs."""
    return tuple(required_degree(gamma, n) for n in range(max_size + 1))


def _feasibility_thresholds(needs: Tuple[int, ...], max_size: int) -> Tuple[int, ...]:
    """``t[s]`` such that a size-s set is feasible iff min degree ≥ t[s].

    Feasible means ∃n ∈ [s, max_size] with every member's degree + the
    (n − s) optimistic future neighbours ≥ ``needs[n]``; rearranged,
    min-degree ≥ s + min over n ≥ s of (needs[n] − n), a suffix minimum.
    ``t[1] ≤ 0``, so singletons are always feasible.
    """
    thresholds = [0] * (max_size + 1)
    running: Optional[int] = None
    for n in range(max_size, 0, -1):
        deficit = needs[n] - n
        running = deficit if running is None else min(running, deficit)
        thresholds[n] = n + running
    return tuple(thresholds)


def _cc_thresholds(
    needs: Tuple[int, ...], min_size: int, max_size: int
) -> Tuple[int, ...]:
    """``cc_t[s]``: the c-closure bound a size-s embedding must meet.

    If non-adjacent u, v both sit in a final γ-quasi-clique S of size n,
    then |N(u)∩S|, |N(v)∩S| ≥ needs[n] inside S∖{u, v} (|·| = n − 2), so
    by inclusion–exclusion u and v share ≥ 2·needs[n] − n + 2 common
    neighbours in the whole transaction.  A size-s embedding can only
    end up inside results of size n ∈ [max(min_size, s), max_size], so
    its worst non-adjacent pair must meet the minimum of the bound over
    that range — a suffix minimum.  The range shrinks as s grows and
    the pair's common-neighbour count never changes, so *failing* the
    bound is hereditary: pruning on it cuts no future result.
    """
    suffix = [0] * (max_size + 2)
    running: Optional[int] = None
    for n in range(max_size, 0, -1):
        bound = 2 * needs[n] - n + 2
        running = bound if running is None else min(running, bound)
        suffix[n] = running
    lo = min(max(min_size, 1), max_size)
    return tuple(
        suffix[max(lo, s)] if s else 0 for s in range(max_size + 1)
    )


# ----------------------------------------------------------------------
# The feasibility-pruned embedding store
# ----------------------------------------------------------------------
class QuasiEmbeddingStore:
    """Per-prefix embeddings for the quasi task, feasibility-pruned.

    Drop-in for the engine-facing surface of
    :class:`~repro.core.embeddings.EmbeddingStore` (``support``,
    ``embedding_count``, ``transactions``, ``extension_plan``,
    ``extend``), with one semantic shift: a *record* is any canonical
    embedding of the prefix's label multiset whose vertex set is
    **feasible** — it can still reach some γ-quasi-clique size within
    ``max_size`` — rather than a clique embedding.  Feasibility is
    hereditary under vertex removal, so growing records one vertex at a
    time (same-label groups in ascending vertex id, the canonical
    discipline) enumerates exactly the feasible canonical embeddings,
    each once, and the engine's extension-support prediction stays
    exact: a transaction has a feasible child *set* iff some record
    here extends to it, floored or not.

    Records are ``(vertices, members, degrees, min_cc)``: the canonical
    vertex tuple, the member set (a Python set under the ``set``
    kernel, a bitmask over :meth:`Graph.bit_index` under ``bitset``),
    each member's in-set degree, and the smallest common-neighbour
    count over the set's non-adjacent pairs (``None`` when none exist —
    cliques).  ``min_cc`` drives the c-closure prune
    (:meth:`cc_viable_support`); per-pair counts are memoized in a
    ``(tid, u, v)``-keyed dict shared down the whole extend chain.

    Unlike the clique store there is no aligned label space and no
    rescan mode: candidates are recomputed from the per-transaction
    index and cached per store instance.  Both kernels enumerate
    candidates in ascending vertex id, so supports, candidate *and*
    record orders — hence every statistic and witness — are
    byte-identical across kernels.
    """

    __slots__ = (
        "database",
        "kernel",
        "gamma",
        "min_size",
        "max_size",
        "size",
        "by_transaction",
        "_needs",
        "_thresholds",
        "_cc_t",
        "_cc_memo",
        "_candidate_cache",
        "_plan",
        "_cc_viable",
        "_quasi",
    )

    def __init__(
        self,
        database: GraphDatabase,
        kernel: str,
        gamma: float,
        min_size: int,
        max_size: int,
        size: int,
        by_transaction: Dict[int, list],
        needs: Tuple[int, ...],
        thresholds: Tuple[int, ...],
        cc_t: Tuple[int, ...],
        cc_memo: Dict[Tuple[int, int, int], int],
    ) -> None:
        self.database = database
        self.kernel = kernel
        self.gamma = gamma
        self.min_size = min_size
        self.max_size = max_size
        self.size = size
        self.by_transaction = by_transaction
        self._needs = needs
        self._thresholds = thresholds
        self._cc_t = cc_t
        self._cc_memo = cc_memo
        self._candidate_cache: Dict[int, List[List[Tuple[int, Label]]]] = {}
        self._plan: Optional[Tuple[int, Tuple[list, int, bool]]] = None
        self._cc_viable: Optional[int] = None
        self._quasi: Optional[Tuple[Tuple[int, ...], Dict[int, Tuple[int, ...]]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_label(
        cls,
        database: GraphDatabase,
        label: Label,
        *,
        kernel: str,
        gamma: float,
        min_size: int,
        max_size: int,
    ) -> "QuasiEmbeddingStore":
        """Singleton embeddings of one root label (always feasible)."""
        if kernel == SLAB:
            # Quasi-clique degree bookkeeping is per-embedding, not
            # per-label, so the transposed slab layout does not apply;
            # the slab kernel runs quasi on int masks (same results).
            kernel = BITSET
        if kernel not in (SET, BITSET):
            raise MiningError(f"unknown kernel {kernel!r}")
        needs = _degree_needs(gamma, max_size)
        thresholds = _feasibility_thresholds(needs, max_size)
        cc_t = _cc_thresholds(needs, min_size, max_size)
        by_transaction: Dict[int, list] = {}
        for tid, graph in enumerate(database):
            records = []
            if kernel == BITSET:
                index = graph.bit_index()
                mask = index.label_masks.get(label, 0)
                order = index.order
                while mask:
                    low = mask & -mask
                    mask ^= low
                    bit = low.bit_length() - 1
                    records.append(((order[bit],), low, (0,), None))
            else:
                for vertex in sorted(graph.vertices_with_label(label)):
                    records.append(((vertex,), {vertex}, (0,), None))
            if records:
                by_transaction[tid] = records
        return cls(
            database,
            kernel,
            gamma,
            min_size,
            max_size,
            1,
            by_transaction,
            needs,
            thresholds,
            cc_t,
            {},
        )

    # ------------------------------------------------------------------
    # Engine-facing surface
    # ------------------------------------------------------------------
    @property
    def support(self) -> int:
        """Transactions holding at least one feasible embedding."""
        return len(self.by_transaction)

    @property
    def embedding_count(self) -> int:
        return sum(len(records) for records in self.by_transaction.values())

    def transactions(self) -> Tuple[int, ...]:
        return tuple(sorted(self.by_transaction))

    def extension_plan(self, abs_sup: int) -> Tuple[list, int, bool]:
        """``(frequent, n_infrequent, blocking)`` — see the clique store.

        Supports count transactions where some record has a feasible
        candidate of the label, unfloored — exact for the floored child
        too, because per-transaction existence is a property of vertex
        *sets* and every feasible child set decomposes canonically into
        (stored parent, above-floor candidate).  ``blocking`` is always
        ``False``: Lemma 4.3 per-prefix closure does not transfer to
        quasi patterns, whose closed filter runs globally in
        :func:`~repro.core.engine.finalize_patterns`.
        """
        if self._plan is not None and self._plan[0] == abs_sup:
            return self._plan[1]
        supports: Dict[Label, int] = {}
        for tid in self.by_transaction:
            seen: Set[Label] = set()
            for row in self._tid_candidates(tid):
                for _vertex, label in row:
                    seen.add(label)
            for label in seen:
                supports[label] = supports.get(label, 0) + 1
        frequent: List[Tuple[Label, int]] = []
        infrequent = 0
        for label in sorted(supports):
            count = supports[label]
            if count >= abs_sup:
                frequent.append((label, count))
            else:
                infrequent += 1
        plan = (frequent, infrequent, False)
        self._plan = (abs_sup, plan)
        return plan

    def nonclosed_extension_label(self, last_label: Label) -> Optional[Label]:
        raise MiningError(
            "Lemma 4.4 non-closed prefix pruning does not apply to quasi "
            "stores; QuasiTaskStrategy.prune_subtree uses the c-closure "
            "bound instead"
        )

    def extend(
        self,
        label: Label,
        last_label: Optional[Label],
        reuse: Optional["QuasiEmbeddingStore"] = None,
    ) -> "QuasiEmbeddingStore":
        """Feasible embeddings of ``C ◇ label``.

        Mirrors the clique store's canonical discipline: repeating the
        last label only accepts vertices above the previous same-label
        vertex, so each feasible vertex set appears exactly once.
        ``reuse`` (the engine's store free list) is accepted for
        interface parity but ignored — quasi stores carry per-embedding
        record lists that are cheap relative to feasibility checking.
        """
        same_label_tail = last_label is not None and label == last_label
        bitset = self.kernel == BITSET
        by_transaction: Dict[int, list] = {}
        for tid, records in self.by_transaction.items():
            graph = self.database[tid]
            if bitset:
                index = graph.bit_index()
                bit_of = index.bit
                neighbor_masks = index.neighbor_masks
            else:
                neighbors = graph.neighbors
            rows = self._tid_candidates(tid)
            extended = []
            for record, row in zip(records, rows):
                vertices, members, degrees, min_cc = record
                floor = vertices[-1] if same_label_tail else None
                for vertex, candidate_label in row:
                    if candidate_label != label:
                        continue
                    if floor is not None and vertex <= floor:
                        continue
                    if bitset:
                        vmask = neighbor_masks[vertex]
                        new_degrees = tuple(
                            d + ((vmask >> bit_of[v]) & 1)
                            for v, d in zip(vertices, degrees)
                        ) + (popcount(vmask & members),)
                        new_members = members | (1 << bit_of[vertex])
                        non_adjacent = [
                            v for v in vertices if not (vmask >> bit_of[v]) & 1
                        ]
                    else:
                        nbrs = neighbors(vertex)
                        new_degrees = tuple(
                            d + (1 if v in nbrs else 0)
                            for v, d in zip(vertices, degrees)
                        ) + (len(nbrs & members),)
                        new_members = members | {vertex}
                        non_adjacent = [v for v in vertices if v not in nbrs]
                    new_min_cc = min_cc
                    for v in non_adjacent:
                        cc = self._common_neighbors(tid, vertex, v)
                        if new_min_cc is None or cc < new_min_cc:
                            new_min_cc = cc
                    extended.append(
                        (vertices + (vertex,), new_members, new_degrees, new_min_cc)
                    )
            if extended:
                by_transaction[tid] = extended
        return QuasiEmbeddingStore(
            self.database,
            self.kernel,
            self.gamma,
            self.min_size,
            self.max_size,
            self.size + 1,
            by_transaction,
            self._needs,
            self._thresholds,
            self._cc_t,
            self._cc_memo,
        )

    def extend_unordered(self, label: Label) -> "QuasiEmbeddingStore":
        raise MiningError(
            "task='quasi' requires structural redundancy pruning; the "
            "feasibility store only enumerates canonical embeddings"
        )

    # ------------------------------------------------------------------
    # Quasi-specific queries
    # ------------------------------------------------------------------
    def quasi_transactions(self) -> Tuple[int, ...]:
        """Transactions where some embedding *is* a γ-quasi-clique now."""
        return self._qualify()[0]

    def quasi_witnesses(self) -> Dict[int, Tuple[int, ...]]:
        """Per supporting transaction, the lexicographically smallest
        sorted vertex tuple among its qualifying embeddings."""
        return dict(self._qualify()[1])

    def cc_viable_support(self) -> int:
        """Transactions with an embedding surviving the c-closure bound.

        An embedding is viable when it has no non-adjacent pair, or its
        worst pair still shares ``cc_t[size]`` common neighbours (see
        :func:`_cc_thresholds`).  Non-viability is hereditary, and any
        embedding qualifying for emission is trivially viable at its
        own size, so a prefix whose viable-transaction count falls
        below ``abs_sup`` cannot emit — nor can any descendant.
        """
        if self._cc_viable is None:
            threshold = self._cc_t[self.size]
            count = 0
            for records in self.by_transaction.values():
                for _vertices, _members, _degrees, min_cc in records:
                    if min_cc is None or min_cc >= threshold:
                        count += 1
                        break
            self._cc_viable = count
        return self._cc_viable

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _qualify(self) -> Tuple[Tuple[int, ...], Dict[int, Tuple[int, ...]]]:
        if self._quasi is None:
            need = self._needs[self.size]
            tids: List[int] = []
            witnesses: Dict[int, Tuple[int, ...]] = {}
            for tid in sorted(self.by_transaction):
                best: Optional[Tuple[int, ...]] = None
                for vertices, _members, degrees, _min_cc in self.by_transaction[tid]:
                    if min(degrees) >= need:
                        key = tuple(sorted(vertices))
                        if best is None or key < best:
                            best = key
                if best is not None:
                    tids.append(tid)
                    witnesses[tid] = best
            self._quasi = (tuple(tids), witnesses)
        return self._quasi

    def _tid_candidates(self, tid: int) -> List[List[Tuple[int, Label]]]:
        """Per record, the feasible extension vertices, ascending id.

        A candidate is any graph vertex outside the member set whose
        addition keeps the set feasible (min grown degree ≥
        ``t[size+1]``) — *all* vertices, not a neighbourhood ball:
        feasible sets may be disconnected below γ's final guarantee,
        and the support-prediction invariant needs the full set.
        """
        cached = self._candidate_cache.get(tid)
        if cached is not None:
            return cached
        records = self.by_transaction[tid]
        next_size = self.size + 1
        if next_size > self.max_size:
            rows: List[List[Tuple[int, Label]]] = [[] for _ in records]
            self._candidate_cache[tid] = rows
            return rows
        threshold = self._thresholds[next_size]
        graph = self.database[tid]
        rows = []
        if self.kernel == BITSET:
            index = graph.bit_index()
            order = index.order
            bit_of = index.bit
            neighbor_masks = index.neighbor_masks
            labels_by_bit = index.labels_by_bit
            for vertices, members, degrees, _min_cc in records:
                row: List[Tuple[int, Label]] = []
                for bit, vertex in enumerate(order):
                    if (members >> bit) & 1:
                        continue
                    vmask = neighbor_masks[vertex]
                    if popcount(vmask & members) < threshold:
                        continue
                    if all(
                        d + ((vmask >> bit_of[v]) & 1) >= threshold
                        for v, d in zip(vertices, degrees)
                    ):
                        row.append((vertex, labels_by_bit[bit]))
                rows.append(row)
        else:
            label_of = graph.label_map()
            universe = sorted(graph.vertices())
            neighbors = graph.neighbors
            for vertices, members, degrees, _min_cc in records:
                row = []
                for vertex in universe:
                    if vertex in members:
                        continue
                    nbrs = neighbors(vertex)
                    if len(nbrs & members) < threshold:
                        continue
                    if all(
                        d + (1 if v in nbrs else 0) >= threshold
                        for v, d in zip(vertices, degrees)
                    ):
                        row.append((vertex, label_of[vertex]))
                rows.append(row)
        self._candidate_cache[tid] = rows
        return rows

    def _common_neighbors(self, tid: int, u: int, v: int) -> int:
        key = (tid, u, v) if u < v else (tid, v, u)
        memo = self._cc_memo
        cc = memo.get(key)
        if cc is None:
            graph = self.database[tid]
            if self.kernel == BITSET:
                masks = graph.bit_index().neighbor_masks
                cc = popcount(masks[u] & masks[v])
            else:
                cc = len(graph.neighbors(u) & graph.neighbors(v))
            memo[key] = cc
        return cc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuasiEmbeddingStore size={self.size} support={self.support} "
            f"embeddings={self.embedding_count} gamma={self.gamma}>"
        )


# ----------------------------------------------------------------------
# The task strategy
# ----------------------------------------------------------------------
class QuasiTaskStrategy(TaskStrategy):
    """γ-quasi-clique mining as an ordinary engine task.

    * **root_store** — builds a :class:`QuasiEmbeddingStore` (the
      feasibility relaxation of the clique store).  Core-number
      pruning and the embedding-strategy knob are clique-specific and
      ignored; ``max_size`` is mandatory.
    * **prune_subtree** — replaces the (unsound-for-quasi) Lemma 4.4
      cut with the c-closure bound: prune when fewer than ``abs_sup``
      transactions keep a cc-viable embedding.  Gated on
      ``nonclosed_prefix_pruning`` like the cut it replaces.
    * **visit** — a prefix emits when enough transactions hold an
      embedding that *is* a γ-quasi-clique right now (the store's
      feasibility support only drives the recursion).
    * **finalize** — the closed filter is global for quasi (label-bag
      anti-monotonicity fails), applied here per ``mine`` call and
      again by :func:`~repro.core.engine.finalize_patterns` at every
      merge site; the filter composes over any partition of the
      emissions, so all execution paths stay byte-identical.
    """

    task = "quasi"
    splittable = True
    supports_sweep = False

    def __init__(self, gamma: float, closed: bool = True) -> None:
        if not 0.5 <= gamma <= 1.0:
            raise MiningError(f"gamma must be in [0.5, 1.0], got {gamma}")
        self.gamma = gamma
        self.closed = closed

    def root_store(self, engine: "MiningEngine", pseudo, label: Label, context=None):
        config = engine.config
        if config.max_size is None:
            raise MiningError(
                "task='quasi' requires max_size (the γ-quasi-clique "
                "feasibility and c-closure bounds need a finite size ceiling)"
            )
        return QuasiEmbeddingStore.for_label(
            engine.database,
            label,
            kernel=config.kernel,
            gamma=self.gamma,
            min_size=config.min_size,
            max_size=config.max_size,
        )

    def prune_subtree(self, engine, labels, store, abs_sup):
        if not engine.config.nonclosed_prefix_pruning:
            return None
        if store.cc_viable_support() < abs_sup:
            return "quasi_cc_bound"
        return None

    def visit(self, engine, labels, store, frequent_extensions, blocked, result, stats, hooks):
        config = engine.config
        if len(labels) < config.min_size:
            return
        tids = store.quasi_transactions()
        if len(tids) < result.min_sup:
            stats.closure_rejections += 1
            return
        pattern = CliquePattern(
            form=CanonicalForm.wrap(labels),
            support=len(tids),
            transactions=tids,
            witnesses=store.quasi_witnesses() if config.collect_witnesses else {},
        )
        result.add(pattern)
        if config.closed_only:
            stats.closed_cliques += 1
        if hooks is not None:
            hooks.pattern(pattern)

    def finalize(self, result):
        final = MiningResult(
            min_sup=result.min_sup,
            closed_only=result.closed_only,
            statistics=result.statistics,
            elapsed_seconds=result.elapsed_seconds,
            truncated=result.truncated,
            completed_roots=result.completed_roots,
        )
        if self.closed:
            ordered = finalize_patterns("quasi", list(result))
        else:
            ordered = sorted(result, key=lambda p: p.form.labels)
        for pattern in ordered:
            final.add(pattern)
        return final


# ----------------------------------------------------------------------
# Deprecated entry point
# ----------------------------------------------------------------------
def mine_closed_quasi_cliques(
    database: GraphDatabase,
    min_sup: float,
    gamma: float,
    min_size: int = 2,
    max_size: int = 6,
    closed_only: bool = True,
) -> MiningResult:
    """Removed entry point for γ-quasi-clique mining.

    Per the deprecation policy (CONTRIBUTING.md) this wrapper, having
    warned for a release, now raises a :class:`MiningError` with the
    migration recipe instead of mining.  It stays importable so old
    ``from repro import mine_closed_quasi_cliques`` lines fail at the
    call, with a useful message, rather than at import time.

    Use instead::

        from repro import MiningRequest, mine
        mine(db, MiningRequest.from_options(
            min_sup, task="quasi", gamma=gamma, max_size=max_size))

    and for the historical ``closed_only=False`` variant, drive the
    engine directly with
    ``MiningEngine(db, MinerConfig.all_frequent(min_size=..., max_size=...),
    strategy=QuasiTaskStrategy(gamma, closed=False))``.
    """
    raise MiningError(
        "mine_closed_quasi_cliques() has been removed; use "
        "repro.mine(database, MiningRequest.from_options(min_sup, "
        "task='quasi', gamma=..., max_size=...)) — or, for "
        "closed_only=False, run MiningEngine with "
        "QuasiTaskStrategy(gamma, closed=False) directly"
    )
