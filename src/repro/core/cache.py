"""Cross-run mining cache: sweep reuse and per-root memoization.

Threshold sweeps — the Figure 6(a)/7(b) reproductions, and every real
caller tuning ``min_sup`` — re-mine the same database from scratch at
each support value, yet almost all of that work is shared:

* **Support is threshold-independent**, and by Lemma 4.3 so is
  closedness: a clique is closed iff some superclique ties its support,
  and that superclique is frequent whenever the clique is.  The closed
  (or all-frequent) set at ``min_sup = s`` therefore equals the set at
  any ``s' ≤ s`` filtered to ``support ≥ s``
  (:meth:`~repro.core.results.MiningResult.filter_support`) — exactly,
  pattern for pattern, witness for witness.
* **DFS roots partition the output** under structural redundancy
  pruning (the property PRs 2–3 built checkpointing and work stealing
  on), so the unit of reuse can be one root's subtree: a call that
  overlaps a previous run re-mines only the roots the cache lacks.

:class:`MiningCache` memoizes per-root results across calls, keyed by
``(database fingerprint, engine digest, absolute support, root
label)`` — the engine digest (:func:`repro.core.engine.engine_digest`)
is the ``MinerConfig`` digest scoped by task (and by ``k`` for top-k),
so different tasks sharing one cache never collide — with three reuse
tiers:

1. **exact hits** — same key: the stored patterns, per-root statistics
   snapshot, and (when recorded) event substream are replayed verbatim,
   so even session event streams stay byte-identical to a cold run;
2. **sweep hits** — no exact entry, but an entry at a lower threshold
   exists: its patterns are filtered to ``support ≥ s`` (exact by the
   argument above) and the derived entry is memoized.  Derived entries
   carry no statistics or events — callers that must replay those
   (sessions, :meth:`MiningExecutor.mine`) use the exact tier only,
   and maximal / top-k runs never consult this tier at all (their
   outputs are not support-filterable across thresholds);
3. **persistence** — :func:`repro.io.runlog.save_cache` /
   :func:`repro.io.runlog.open_cache` round-trip the whole cache as
   JSON, so a CLI sweep or a restarted service warms from disk.

Invalidation is structural: the database fingerprint covers every
vertex, label, and edge, so any change misses cleanly.  Appends are
cheaper than that: :meth:`MiningCache.rekey_database` migrates the
entries of roots the new transaction cannot touch to the new
fingerprint (the byte-stability lemma of :mod:`repro.core.incremental`),
which is how :class:`~repro.core.incremental.IncrementalMiner` keeps
its per-root cache warm across appends.  Threshold changes never
invalidate anything — they are what the sweep tier feeds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm, Label
from .config import MinerConfig
from .engine import engine_digest, engine_for_task, finalize_patterns, make_strategy
from .pattern import CliquePattern
from .results import MiningResult
from .session import MiningEvent, event_from_dict, event_to_dict
from .statistics import MinerStatistics

__all__ = [
    "CACHE_VERSION",
    "CachedRoot",
    "MiningCache",
    "mine_with_cache",
    "sweep",
]

CACHE_VERSION = 1

#: Cache keys: (database fingerprint, config digest, absolute support,
#: root label).
CacheKey = Tuple[str, str, int, Label]


@dataclass(frozen=True)
class CachedRoot:
    """One DFS root's memoized mining result.

    ``patterns``
        The root subtree's patterns in canonical (DFS) order.
    ``statistics``
        The root's :meth:`MinerStatistics.snapshot`, or ``None`` for
        sweep-derived entries (a filter reconstructs patterns exactly,
        but not the search counters of a hypothetical re-mine).
    ``events`` / ``events_sample_every``
        The root's session event substream (``PrefixVisited`` /
        ``PatternEmitted`` / ``SubtreePruned``), recorded at the given
        sampling granularity, or ``None`` when the producing run did
        not stream events.  Replay requires the same ``sample_every``.
    ``derived_from``
        The absolute support of the source entry when this entry was
        produced by the sweep tier, else ``None``.
    """

    root: Label
    abs_sup: int
    patterns: Tuple[CliquePattern, ...]
    statistics: Optional[Mapping[str, Any]] = None
    events: Optional[Tuple[MiningEvent, ...]] = None
    events_sample_every: int = 0
    derived_from: Optional[int] = None

    def result(self, closed_only: bool) -> MiningResult:
        """Rehydrate this entry as a per-root :class:`MiningResult`."""
        stats = (
            MinerStatistics.from_snapshot(dict(self.statistics))
            if self.statistics is not None
            else MinerStatistics()
        )
        part = MiningResult(
            min_sup=self.abs_sup, closed_only=closed_only, statistics=stats
        )
        for pattern in self.patterns:
            part.add(pattern)
        return part


class MiningCache:
    """Memoizes per-root mining work across calls (and across processes
    via :func:`repro.io.runlog.save_cache`).

    Examples
    --------
    >>> from repro.graphdb import paper_example_database
    >>> cache = MiningCache()
    >>> db = paper_example_database()
    >>> [p.key() for p in mine_with_cache(db, 2, cache=cache)]
    ['abcd:2', 'bde:2']
    >>> mine_with_cache(db, 2, cache=cache).statistics.roots_from_cache
    5
    """

    def __init__(self) -> None:
        self._entries: Dict[CacheKey, CachedRoot] = {}
        #: (fingerprint, digest, root) -> the thresholds cached for it;
        #: the sweep tier's index.
        self._supports: Dict[Tuple[str, str, Label], Set[int]] = {}
        #: Lifetime counters (process-local; not persisted).
        self.hits = 0
        self.misses = 0
        self.sweep_hits = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(
        self,
        fingerprint: str,
        config_digest: str,
        abs_sup: int,
        root: Label,
        *,
        need_statistics: bool = False,
        need_events: bool = False,
        sample_every: int = 0,
        allow_sweep: bool = True,
        record: bool = True,
    ) -> Optional[CachedRoot]:
        """Find an entry answering one root at one threshold, or ``None``.

        ``need_statistics`` restricts the answer to entries carrying a
        statistics snapshot (excludes sweep-derived entries);
        ``need_events`` additionally requires an event substream
        recorded at exactly ``sample_every``.  ``allow_sweep`` enables
        the sweep tier — deriving a patterns-only entry from a cached
        lower threshold — and is only consulted when neither statistics
        nor events are required.  ``record=False`` makes the probe
        silent (no hit/miss counter updates) for introspection like
        :meth:`IncrementalMiner.result`.
        """
        entry = self._entries.get((fingerprint, config_digest, abs_sup, root))
        if entry is not None and self._usable(
            entry, need_statistics, need_events, sample_every
        ):
            if record:
                self.hits += 1
            return entry
        if allow_sweep and not need_statistics and not need_events:
            derived = self._derive(fingerprint, config_digest, abs_sup, root)
            if derived is not None:
                if record:
                    self.hits += 1
                    self.sweep_hits += 1
                return derived
        if record:
            self.misses += 1
        return None

    def store(self, fingerprint: str, config_digest: str, entry: CachedRoot) -> None:
        """Insert (or overwrite) one root's entry."""
        self._put(fingerprint, config_digest, entry)
        self.stores += 1

    def _put(self, fingerprint: str, config_digest: str, entry: CachedRoot) -> None:
        self._entries[(fingerprint, config_digest, entry.abs_sup, entry.root)] = entry
        self._supports.setdefault(
            (fingerprint, config_digest, entry.root), set()
        ).add(entry.abs_sup)

    @staticmethod
    def _usable(
        entry: CachedRoot, need_statistics: bool, need_events: bool, sample_every: int
    ) -> bool:
        if need_statistics and entry.statistics is None:
            return False
        if need_events and (
            entry.events is None or entry.events_sample_every != sample_every
        ):
            return False
        return True

    def _derive(
        self, fingerprint: str, config_digest: str, abs_sup: int, root: Label
    ) -> Optional[CachedRoot]:
        """The sweep tier: filter the closest lower-threshold entry.

        Exact by threshold-independence (module docstring): the root's
        pattern set at ``s`` is its set at any ``s' < s`` filtered to
        ``support ≥ s``.  The closest (largest) ``s'`` filters the
        fewest patterns; derived entries are themselves valid sources,
        since filtering composes.  The derived entry is memoized so
        repeated sweeps pay the filter once.
        """
        cached_sups = self._supports.get((fingerprint, config_digest, root))
        if not cached_sups:
            return None
        lower = [sup for sup in cached_sups if sup < abs_sup]
        if not lower:
            return None
        source = self._entries[(fingerprint, config_digest, max(lower), root)]
        derived = CachedRoot(
            root=root,
            abs_sup=abs_sup,
            patterns=tuple(p for p in source.patterns if p.support >= abs_sup),
            statistics=None,
            derived_from=source.abs_sup,
        )
        self._put(fingerprint, config_digest, derived)
        return derived

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_roots(self, fingerprint: str, roots: Sequence[Label]) -> int:
        """Drop every entry of the given roots (all configs/thresholds)."""
        wanted = set(roots)
        dropped = 0
        for key in list(self._entries):
            fp, digest, sup, root = key
            if fp == fingerprint and root in wanted:
                self._discard(key)
                dropped += 1
        return dropped

    def invalidate_database(self, fingerprint: str) -> int:
        """Drop every entry of one database fingerprint."""
        dropped = 0
        for key in list(self._entries):
            if key[0] == fingerprint:
                self._discard(key)
                dropped += 1
        return dropped

    def rekey_database(
        self, old_fingerprint: str, new_fingerprint: str, drop_roots: Sequence[Label] = ()
    ) -> Tuple[int, int]:
        """Migrate entries between fingerprints; ``(moved, dropped)``.

        The transaction-append primitive: appending ``T`` leaves every
        subtree rooted at a label absent from ``T`` byte-for-byte
        stable (:mod:`repro.core.incremental`), so those entries stay
        valid under the grown database's fingerprint.  ``drop_roots``
        names the labels ``T`` touches; their entries are discarded at
        every threshold.
        """
        wanted_drop = set(drop_roots)
        moved = dropped = 0
        for key in list(self._entries):
            fp, digest, sup, root = key
            if fp != old_fingerprint:
                continue
            entry = self._entries[key]
            self._discard(key)
            if root in wanted_drop:
                dropped += 1
                continue
            self._put(new_fingerprint, digest, entry)
            moved += 1
        return moved, dropped

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()
        self._supports.clear()

    def _discard(self, key: CacheKey) -> None:
        del self._entries[key]
        fp, digest, sup, root = key
        index = self._supports.get((fp, digest, root))
        if index is not None:
            index.discard(sup)
            if not index:
                del self._supports[(fp, digest, root)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def roots_cached(
        self, fingerprint: str, config_digest: str, abs_sup: int
    ) -> Tuple[Label, ...]:
        """Roots with an exact-threshold entry, in canonical order."""
        return tuple(
            sorted(
                root
                for (fp, digest, sup, root) in self._entries
                if fp == fingerprint and digest == config_digest and sup == abs_sup
            )
        )

    @property
    def hit_rate(self) -> float:
        """Lifetime ``hits / (hits + misses)`` (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<MiningCache {len(self._entries)} entries "
            f"hits={self.hits} misses={self.misses} sweep={self.sweep_hits}>"
        )

    # ------------------------------------------------------------------
    # Serialisation (persistence lives in repro.io.runlog)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict of every entry (counters are not state)."""
        entries = []
        for (fp, digest, sup, root), entry in sorted(self._entries.items()):
            payload: Dict[str, Any] = {
                "fingerprint": fp,
                "config_digest": digest,
                "abs_sup": sup,
                "root": root,
                "patterns": [
                    {
                        "labels": list(p.labels),
                        "support": p.support,
                        "transactions": list(p.transactions),
                        "witnesses": {
                            str(t): list(w) for t, w in p.witnesses.items()
                        },
                    }
                    for p in entry.patterns
                ],
                "statistics": dict(entry.statistics)
                if entry.statistics is not None
                else None,
                "events": [event_to_dict(e) for e in entry.events]
                if entry.events is not None
                else None,
                "events_sample_every": entry.events_sample_every,
                "derived_from": entry.derived_from,
            }
            entries.append(payload)
        return {"kind": "mining-cache", "version": CACHE_VERSION, "entries": entries}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MiningCache":
        """Rebuild a cache from :meth:`to_dict` output."""
        if payload.get("kind") != "mining-cache":
            raise MiningError(
                f"expected kind 'mining-cache', got {payload.get('kind')!r}"
            )
        cache = cls()
        for raw in payload.get("entries", ()):
            patterns = tuple(
                CliquePattern(
                    form=CanonicalForm.from_labels(entry["labels"]),
                    support=int(entry["support"]),
                    transactions=tuple(int(t) for t in entry.get("transactions", ())),
                    witnesses={
                        int(t): tuple(int(v) for v in w)
                        for t, w in entry.get("witnesses", {}).items()
                    },
                )
                for entry in raw["patterns"]
            )
            events = raw.get("events")
            cache._put(
                raw["fingerprint"],
                raw["config_digest"],
                CachedRoot(
                    root=raw["root"],
                    abs_sup=int(raw["abs_sup"]),
                    patterns=patterns,
                    statistics=raw.get("statistics"),
                    events=tuple(event_from_dict(e) for e in events)
                    if events is not None
                    else None,
                    events_sample_every=int(raw.get("events_sample_every", 0)),
                    derived_from=raw.get("derived_from"),
                ),
            )
        return cache


# ----------------------------------------------------------------------
# Cached mining
# ----------------------------------------------------------------------
def mine_with_cache(
    database: GraphDatabase,
    min_sup: Union[int, float, str],
    *,
    cache: MiningCache,
    config: Optional[MinerConfig] = None,
    processes: int = 1,
    scheduler: Optional[str] = None,
    fingerprint: Optional[str] = None,
    task: str = "closed",
    k: Optional[int] = None,
    gamma: Optional[float] = None,
) -> MiningResult:
    """Mine an engine task, reusing (and feeding) a cache.

    Any engine task (``closed``, ``frequent``, ``maximal``, ``topk``,
    ``quasi``) runs here; entries are keyed by
    :func:`~repro.core.engine.engine_digest`, so tasks never collide
    in a shared cache (and closed/frequent keys stay byte-compatible
    with caches persisted before the engine refactor).  The pattern
    set is byte-identical to an uncached serial
    :meth:`MiningEngine.mine` — cached roots replay their stored
    patterns, missing roots are mined fresh (serially, or through a
    :class:`~repro.core.executor.MiningExecutor` when ``processes >
    1``) and stored.  Statistics are replayed exactly for exact-tier
    hits; sweep-derived roots contribute patterns but no search
    counters, so after a sweep hit the statistics describe only the
    roots actually mined.  The sweep tier itself only serves closed
    and frequent runs: maximal, top-k, and quasi outputs are not
    support-filterable across thresholds, so those tasks use the
    exact-replay tier alone.  ``statistics.roots_from_cache`` /
    ``cache_hits`` / ``cache_misses`` report the reuse (kept out of the
    deterministic snapshot, like ``cpu_seconds``).

    ``fingerprint`` lets a caller that already computed
    :func:`~repro.io.runlog.database_fingerprint` for *this exact
    database* skip re-hashing it (:func:`sweep` hits this path once per
    threshold).  Passing a fingerprint of a different database serves
    stale patterns — leave it ``None`` unless the provenance is certain.
    """
    from ..io.runlog import database_fingerprint

    started = time.perf_counter()
    # Raises MiningError for unknown tasks / topk without k / quasi
    # without gamma, and tells us whether the sweep tier is sound for
    # this task's output.
    strategy = make_strategy(task, k, gamma)
    if config is None:
        config = (
            MinerConfig() if task != "frequent" else MinerConfig.all_frequent()
        )
    if config.closed_only != (task != "frequent"):
        raise MiningError(
            f"config.closed_only={config.closed_only} contradicts task {task!r}"
        )
    if not config.structural_redundancy_pruning:
        raise MiningError(
            "cached mining reuses per-root subtrees and requires structural "
            "redundancy pruning"
        )
    abs_sup = database.absolute_support(min_sup)
    if fingerprint is None:
        fingerprint = database_fingerprint(database)
    digest = engine_digest(task, config, k, gamma)
    roots = tuple(database.frequent_labels(abs_sup))

    stats = MinerStatistics()
    collected: List[CliquePattern] = []
    hits = 0
    if processes > 1:
        from .executor import STEALING, MiningExecutor

        executor = MiningExecutor(
            database,
            config,
            processes=processes,
            scheduler=scheduler if scheduler is not None else STEALING,
            cache=cache,
            task=task,
            k=k,
            gamma=gamma,
        )
        try:
            for _root, part, _events in executor.iter_roots(
                abs_sup, roots, allow_sweep=True
            ):
                stats.merge(part.statistics)
                collected.extend(part)
            report = executor.last_report
            hits = report.roots_from_cache if report is not None else 0
        finally:
            executor.close()
    else:
        if scheduler is not None:
            raise MiningError("scheduler only applies when processes > 1")
        missing: List[Label] = []
        for root in roots:
            entry = cache.lookup(
                fingerprint,
                digest,
                abs_sup,
                root,
                allow_sweep=strategy.supports_sweep,
            )
            if entry is None:
                missing.append(root)
                continue
            hits += 1
            collected.extend(entry.patterns)
            if entry.statistics is not None:
                stats.merge(MinerStatistics.from_snapshot(dict(entry.statistics)))
        if missing:
            miner = engine_for_task(database, config, task, k, gamma).prepare()
            for root in missing:
                part = miner.mine(abs_sup, root_labels=(root,))
                cache.store(
                    fingerprint,
                    digest,
                    CachedRoot(
                        root=root,
                        abs_sup=abs_sup,
                        patterns=tuple(part),
                        statistics=part.statistics.snapshot(),
                    ),
                )
                stats.merge(part.statistics)
                collected.extend(part)

    result = MiningResult(
        min_sup=abs_sup, closed_only=config.closed_only, statistics=stats
    )
    for pattern in finalize_patterns(task, collected, k):
        result.add(pattern)
    # Parity with the uncached serial miner, whose lazy label-support
    # scan counts one database scan (the executor does the same).
    stats.database_scans += 1
    stats.roots_from_cache += hits
    stats.cache_hits += hits
    stats.cache_misses += len(roots) - hits
    result.elapsed_seconds = time.perf_counter() - started
    return result


def sweep(
    database: GraphDatabase,
    supports: Sequence[Union[int, float, str]],
    *,
    task: str = "closed",
    cache: Optional[MiningCache] = None,
    config: Optional[MinerConfig] = None,
    min_size: int = 1,
    max_size: Optional[int] = None,
    kernel: Optional[str] = None,
    processes: int = 1,
    scheduler: Optional[str] = None,
) -> Dict[Union[int, float, str], MiningResult]:
    """Mine one database at several support thresholds, sharing work.

    Mines once at the *lowest* absolute threshold (warming ``cache``),
    then answers every other threshold from the sweep tier — a filter
    to ``support ≥ s``, exact by threshold-independence — instead of
    re-mining.  Each returned result's pattern set is byte-identical
    to a fresh mine at its threshold.

    Returns ``{support_spec: MiningResult}`` preserving the order the
    specs were given in.  ``cache`` may be shared with other calls (and
    persisted via :func:`repro.io.runlog.save_cache`); when ``None`` a
    private cache spanning just this sweep is used.  ``task``,
    ``min_size``/``max_size``, ``kernel``, and ``config`` follow
    :func:`repro.mine`.
    """
    if not supports:
        raise MiningError("sweep needs at least one support threshold")
    if task not in ("closed", "frequent"):
        raise MiningError(
            f"sweep supports tasks 'closed' and 'frequent', got {task!r}; "
            f"maximal and top-k outputs are not support-filterable across "
            f"thresholds (use repro.mine(task=..., cache=...) per threshold "
            f"for exact-replay reuse)"
        )
    resolved = MinerConfig.for_task(task, config, min_size, max_size, kernel, None)
    if cache is None:
        cache = MiningCache()
    by_abs = [(spec, database.absolute_support(spec)) for spec in supports]
    seen: Set[Union[int, float, str]] = set()
    for spec, _abs in by_abs:
        if spec in seen:
            raise MiningError(f"duplicate support threshold {spec!r} in sweep")
        seen.add(spec)
    from ..io.runlog import database_fingerprint

    # One structural hash serves the whole sweep (the database cannot
    # change between thresholds of a single call).
    fingerprint = database_fingerprint(database)
    # Warm the cache bottom-up: the lowest threshold's mine is the one
    # real search; every other threshold filters it.
    base = min(abs_sup for _spec, abs_sup in by_abs)
    base_result = mine_with_cache(
        database,
        base,
        cache=cache,
        config=resolved,
        processes=processes,
        scheduler=scheduler,
        fingerprint=fingerprint,
        task=task,
    )
    results: Dict[Union[int, float, str], MiningResult] = {}
    for spec, abs_sup in by_abs:
        if abs_sup == base:
            results[spec] = base_result
            continue
        results[spec] = mine_with_cache(
            database,
            abs_sup,
            cache=cache,
            config=resolved,
            processes=processes,
            scheduler=scheduler,
            fingerprint=fingerprint,
            task=task,
        )
    return results
