"""The lattice-like structure over frequent cliques (paper Figure 4).

Each node is a frequent clique rendered as ``canonical form:support``;
each edge joins a clique to a *direct* subclique (exactly one fewer
vertex).  The lattice distinguishes the DFS edges CLAN actually follows
(growing a canonical prefix by its last label — the solid edges of
Figure 4) from the redundant extensions that structural redundancy
pruning skips (the dotted edges).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..exceptions import PatternError
from .canonical import CanonicalForm
from .pattern import CliquePattern
from .results import MiningResult


class CliqueLattice:
    """Lattice over a set of frequent clique patterns.

    Built from an all-frequent :class:`MiningResult` (or any pattern
    iterable); closedness is recomputed from the patterns themselves so
    the dotted ellipses of Figure 4 can be reproduced without a second
    mining run.
    """

    def __init__(self, patterns: Iterable[CliquePattern]) -> None:
        self._patterns: Dict[CanonicalForm, CliquePattern] = {}
        for pattern in patterns:
            if pattern.form in self._patterns:
                raise PatternError(f"duplicate pattern {pattern.key()} in lattice")
            self._patterns[pattern.form] = pattern
        # edges: child (larger) -> direct subcliques present in the set
        self._down_edges: Dict[CanonicalForm, List[CanonicalForm]] = {}
        self._up_edges: Dict[CanonicalForm, List[CanonicalForm]] = {}
        for form in self._patterns:
            subs = [s for s in form.direct_subcliques() if s in self._patterns]
            self._down_edges[form] = sorted(subs, key=lambda f: f.labels)
            for sub in subs:
                self._up_edges.setdefault(sub, []).append(form)
        for form, ups in self._up_edges.items():
            ups.sort(key=lambda f: f.labels)

    @classmethod
    def from_result(cls, result: MiningResult) -> "CliqueLattice":
        """Build the lattice from a mining result.

        A closed-only result is first expanded to the full frequent set
        so the lattice matches Figure 4's contents.
        """
        if result.closed_only:
            result = result.expand_to_frequent()
        return cls(result)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, form: object) -> bool:
        return form in self._patterns

    def pattern(self, form: CanonicalForm) -> CliquePattern:
        """Return the pattern at a node."""
        try:
            return self._patterns[form]
        except KeyError:
            raise PatternError(f"{form} is not a node of this lattice") from None

    def levels(self) -> Dict[int, List[CliquePattern]]:
        """Patterns grouped by clique size, each level in canonical order."""
        grouped: Dict[int, List[CliquePattern]] = {}
        for pattern in self._patterns.values():
            grouped.setdefault(pattern.size, []).append(pattern)
        for patterns in grouped.values():
            patterns.sort(key=lambda p: p.form.labels)
        return dict(sorted(grouped.items()))

    def direct_subcliques(self, form: CanonicalForm) -> List[CanonicalForm]:
        """Direct subclique neighbours present in the lattice."""
        return list(self._down_edges.get(form, ()))

    def direct_supercliques(self, form: CanonicalForm) -> List[CanonicalForm]:
        """Direct superclique neighbours present in the lattice."""
        return list(self._up_edges.get(form, ()))

    def is_closed(self, form: CanonicalForm) -> bool:
        """Closedness within the lattice (dotted vs solid node of Fig. 4)."""
        pattern = self.pattern(form)
        return all(
            self._patterns[up].support != pattern.support
            for up in self._up_edges.get(form, ())
        )

    def closed_forms(self) -> List[CanonicalForm]:
        """All closed nodes in canonical order."""
        return sorted(
            (f for f in self._patterns if self.is_closed(f)), key=lambda f: f.labels
        )

    def valid_extension_edge(self, parent: CanonicalForm, child: CanonicalForm) -> bool:
        """Whether CLAN's DFS actually follows parent → child.

        True iff ``parent`` is the canonical direct prefix of ``child``
        (the solid edges of Figure 4); every other direct-subclique edge
        is a redundant extension that the pruning skips.
        """
        if child.size != parent.size + 1:
            return False
        return child.direct_prefix() == parent

    def critical_path(self, target: CanonicalForm) -> List[CanonicalForm]:
        """The DFS path from the root to ``target`` (Figure 4's dark path).

        By Lemma 4.2 this is exactly the chain of prefixes of the
        canonical form.
        """
        if target not in self._patterns:
            raise PatternError(f"{target} is not a node of this lattice")
        path = list(target.prefixes()) + [target]
        missing = [f for f in path if f not in self._patterns]
        if missing:
            raise PatternError(
                f"lattice is not prefix-closed: missing {missing[0]} on the "
                f"path to {target} (was it mined with a size filter?)"
            )
        return path

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, mark_closed: bool = True) -> str:
        """ASCII rendering, one level per line (level 1 at the top).

        Closed cliques render as ``[abcd:2]``, non-closed as
        ``(abc:2)`` — parentheses play the dotted ellipses of Figure 4.
        """
        lines: List[str] = []
        for size, patterns in self.levels().items():
            cells = []
            for pattern in patterns:
                closed = self.is_closed(pattern.form)
                if mark_closed and closed:
                    cells.append(f"[{pattern.key()}]")
                else:
                    cells.append(f"({pattern.key()})")
            lines.append(f"level {size}: " + "  ".join(cells))
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz DOT rendering with solid DFS edges and dashed others."""
        lines = ["digraph clique_lattice {", "  rankdir=BT;"]
        for form, pattern in sorted(self._patterns.items(), key=lambda kv: kv[0].labels):
            shape = "box" if self.is_closed(form) else "ellipse"
            style = "solid" if self.is_closed(form) else "dashed"
            lines.append(
                f'  "{pattern.key()}" [shape={shape}, style={style}];'
            )
        for child, parents in sorted(self._down_edges.items(), key=lambda kv: kv[0].labels):
            child_key = self._patterns[child].key()
            for parent in parents:
                parent_key = self._patterns[parent].key()
                style = "solid" if self.valid_extension_edge(parent, child) else "dashed"
                lines.append(f'  "{parent_key}" -> "{child_key}" [style={style}];')
        lines.append("}")
        return "\n".join(lines)

    def edge_count(self) -> Tuple[int, int]:
        """Return (valid DFS edges, redundant edges) — Figure 4's solid/dotted."""
        valid = 0
        redundant = 0
        for child, parents in self._down_edges.items():
            for parent in parents:
                if self.valid_extension_edge(parent, child):
                    valid += 1
                else:
                    redundant += 1
        return valid, redundant
