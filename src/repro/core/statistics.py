"""Search-process counters.

The evaluation sections of pattern-mining papers argue about *work*
(patterns enumerated, subtrees pruned, embeddings touched), not just
wall-clock time; :class:`MinerStatistics` records those quantities so
benchmarks and ablations can report them alongside runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class MinerStatistics:
    """Counters accumulated over one mining run."""

    #: Prefix cliques visited by the DFS (nodes of the search tree).
    prefixes_visited: int = 0
    #: Frequent cliques enumerated (= prefixes that met min_sup).
    frequent_cliques: int = 0
    #: Cliques that passed the closure check.
    closed_cliques: int = 0
    #: Subtrees cut by non-closed prefix pruning (Lemma 4.4).
    nonclosed_prefix_prunes: int = 0
    #: Patterns discarded by the closure check (Lemma 4.3).
    closure_rejections: int = 0
    #: Extension labels rejected for being infrequent.
    infrequent_extensions: int = 0
    #: Extension labels skipped by structural redundancy pruning.
    redundancy_skips: int = 0
    #: Duplicate patterns collapsed when redundancy pruning is off.
    duplicates_collapsed: int = 0
    #: Total embedding records materialised.
    embeddings_created: int = 0
    #: Peak live embeddings for a single prefix.
    peak_embeddings: int = 0
    #: Database scans performed (extension-support scans).
    database_scans: int = 0
    #: Deepest prefix size reached.
    max_depth: int = 0
    #: CPU time spent inside :meth:`ClanMiner.mine` calls.  Serially
    #: this tracks wall-clock; across a worker pool it *sums* over
    #: workers, so ``cpu_seconds / elapsed_seconds`` reads as effective
    #: parallelism.  Deliberately absent from :meth:`snapshot` *and*
    #: the repr: event streams and differential comparisons must stay
    #: deterministic, and timings are not.
    cpu_seconds: float = field(default=0.0, repr=False)
    #: DFS roots answered from a :class:`~repro.core.cache.MiningCache`
    #: instead of being mined.  Like ``cpu_seconds``, the cache counters
    #: depend on what happened to run earlier in the process, not on
    #: the database — so they are kept out of :meth:`snapshot` and the
    #: repr, and cached-vs-cold comparisons stay byte-identical.
    roots_from_cache: int = field(default=0, repr=False)
    #: Per-call cache hit/miss counters (exact + sweep-derived hits).
    cache_hits: int = field(default=0, repr=False)
    cache_misses: int = field(default=0, repr=False)
    #: Frequent cliques per size (the series of Figure 6(b) uses the
    #: closed analogue from the result set).
    frequent_by_size: Dict[int, int] = field(default_factory=dict)

    def record_prefix(self, size: int) -> None:
        """Record visiting a prefix of the given size."""
        self.prefixes_visited += 1
        if size > self.max_depth:
            self.max_depth = size

    def record_node(self, size: int, embeddings: int) -> None:
        """Record one DFS node: a visited prefix and its embeddings.

        Fuses :meth:`record_prefix` + :meth:`record_embeddings` — the
        pair every node pays on the hot path — into one call.
        """
        self.prefixes_visited += 1
        if size > self.max_depth:
            self.max_depth = size
        self.embeddings_created += embeddings
        if embeddings > self.peak_embeddings:
            self.peak_embeddings = embeddings

    def record_frequent(self, size: int) -> None:
        """Record one frequent clique of the given size."""
        self.frequent_cliques += 1
        self.frequent_by_size[size] = self.frequent_by_size.get(size, 0) + 1

    def record_embeddings(self, count: int) -> None:
        """Record materialising ``count`` embeddings for one prefix."""
        self.embeddings_created += count
        if count > self.peak_embeddings:
            self.peak_embeddings = count

    def absorb_search(
        self,
        prefixes: int,
        max_depth: int,
        embeddings: int,
        peak_embeddings: int,
        frequent: int,
        frequent_by_size: Dict[int, int],
        closed: int,
        rejections: int,
        prunes: int,
        infrequent: int,
        redundancy_skips: int,
        duplicates: int,
        scans: int,
    ) -> None:
        """Fold one search run's locally-accumulated counters in.

        The engine's iterative hot loop (:meth:`repro.core.engine.
        MiningEngine._search`) counts in plain local variables and
        flushes them here exactly once per subtree — additive sums and
        high-water maxima, so the flush composes with counters that
        strategies incremented directly on this object mid-search.
        """
        self.prefixes_visited += prefixes
        if max_depth > self.max_depth:
            self.max_depth = max_depth
        self.embeddings_created += embeddings
        if peak_embeddings > self.peak_embeddings:
            self.peak_embeddings = peak_embeddings
        self.frequent_cliques += frequent
        if frequent_by_size:
            mine = self.frequent_by_size
            for size, count in frequent_by_size.items():
                mine[size] = mine.get(size, 0) + count
        self.closed_cliques += closed
        self.closure_rejections += rejections
        self.nonclosed_prefix_prunes += prunes
        self.infrequent_extensions += infrequent
        self.redundancy_skips += redundancy_skips
        self.duplicates_collapsed += duplicates
        self.database_scans += scans

    def merge(self, part: "MinerStatistics") -> None:
        """Fold another run's counters into this one.

        Additive counters sum, high-water marks take the maximum, and
        the per-size histogram merges pointwise.  This is how the
        parallel pool and :class:`~repro.core.session.MiningSession`
        combine per-root (or per-worker) statistics into one run-wide
        view.
        """
        self.prefixes_visited += part.prefixes_visited
        self.frequent_cliques += part.frequent_cliques
        self.closed_cliques += part.closed_cliques
        self.nonclosed_prefix_prunes += part.nonclosed_prefix_prunes
        self.closure_rejections += part.closure_rejections
        self.infrequent_extensions += part.infrequent_extensions
        self.redundancy_skips += part.redundancy_skips
        self.duplicates_collapsed += part.duplicates_collapsed
        self.embeddings_created += part.embeddings_created
        self.peak_embeddings = max(self.peak_embeddings, part.peak_embeddings)
        self.database_scans += part.database_scans
        self.max_depth = max(self.max_depth, part.max_depth)
        self.cpu_seconds += part.cpu_seconds
        self.roots_from_cache += part.roots_from_cache
        self.cache_hits += part.cache_hits
        self.cache_misses += part.cache_misses
        for size, count in part.frequent_by_size.items():
            self.frequent_by_size[size] = self.frequent_by_size.get(size, 0) + count

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy of every *deterministic* counter.

        Used by heartbeats and traces — :class:`RootFinished` events
        carry these dicts, and serial and parallel sessions promise
        byte-identical streams, so ``cpu_seconds`` (a timing) is
        intentionally left out.
        """
        return {
            "prefixes_visited": self.prefixes_visited,
            "frequent_cliques": self.frequent_cliques,
            "closed_cliques": self.closed_cliques,
            "nonclosed_prefix_prunes": self.nonclosed_prefix_prunes,
            "closure_rejections": self.closure_rejections,
            "infrequent_extensions": self.infrequent_extensions,
            "redundancy_skips": self.redundancy_skips,
            "duplicates_collapsed": self.duplicates_collapsed,
            "embeddings_created": self.embeddings_created,
            "peak_embeddings": self.peak_embeddings,
            "database_scans": self.database_scans,
            "max_depth": self.max_depth,
            "frequent_by_size": {
                str(size): count for size, count in sorted(self.frequent_by_size.items())
            },
        }

    @classmethod
    def from_snapshot(cls, payload: Dict[str, object]) -> "MinerStatistics":
        """Rebuild the deterministic counters from :meth:`snapshot` output.

        The inverse used when a cached root's statistics are replayed
        (:mod:`repro.core.cache`).  Non-deterministic fields —
        ``cpu_seconds`` and the cache counters — are not in snapshots
        and come back as their zero defaults.
        """
        stats = cls()
        for name in (
            "prefixes_visited",
            "frequent_cliques",
            "closed_cliques",
            "nonclosed_prefix_prunes",
            "closure_rejections",
            "infrequent_extensions",
            "redundancy_skips",
            "duplicates_collapsed",
            "embeddings_created",
            "peak_embeddings",
            "database_scans",
            "max_depth",
        ):
            setattr(stats, name, int(payload.get(name, 0)))  # type: ignore[call-overload]
        stats.frequent_by_size = {
            int(size): int(count)
            for size, count in dict(payload.get("frequent_by_size", {})).items()  # type: ignore[arg-type]
        }
        return stats

    def prefixes_per_second(self, elapsed_seconds: float) -> float:
        """Search throughput over a given wall-clock span (0 if unknown)."""
        if elapsed_seconds <= 0.0:
            return 0.0
        return self.prefixes_visited / elapsed_seconds

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"prefixes={self.prefixes_visited} frequent={self.frequent_cliques} "
            f"closed={self.closed_cliques} pruned-subtrees={self.nonclosed_prefix_prunes} "
            f"closure-rejects={self.closure_rejections} scans={self.database_scans} "
            f"embeddings={self.embeddings_created} depth={self.max_depth}"
        )
