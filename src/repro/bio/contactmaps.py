"""Synthetic protein contact-map graphs.

The paper's introduction cites Kato & Takahashi [11]: clique search over
protein molecular graphs finds maximal common structural features.  This
substrate provides that domain's shape for the examples and tests:

* one graph per protein in a family;
* vertices are residues labeled by amino-acid type (20-letter alphabet);
* edges join residues in spatial contact — simulated by a 1-D folded
  chain: backbone contacts plus window-based "fold" contacts, giving the
  locally dense, globally sparse structure of real contact maps;
* a *conserved motif* — a residue cluster in mutual contact with a fixed
  amino-acid composition — is planted across the family, so mining
  frequent closed cliques across the family recovers the common
  structural feature, exactly the use case of [11].
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..exceptions import DataGenerationError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph

#: One-letter amino-acid codes.
AMINO_ACIDS: Tuple[str, ...] = tuple("ACDEFGHIKLMNPQRSTVWY")


@dataclass(frozen=True)
class MotifSpec:
    """A conserved structural motif.

    ``residues`` is the amino-acid composition of the motif's mutually
    contacting cluster; ``conservation`` the fraction of family members
    that carry it.
    """

    residues: Tuple[str, ...]
    conservation: float = 1.0

    def __post_init__(self) -> None:
        bad = [r for r in self.residues if r not in AMINO_ACIDS]
        if bad:
            raise DataGenerationError(f"unknown amino acids {bad!r}")
        if not 0.0 < self.conservation <= 1.0:
            raise DataGenerationError("conservation must be in (0, 1]")
        if len(self.residues) < 3:
            raise DataGenerationError("motifs need at least 3 residues")


#: Default conserved motifs: a zinc-finger-like CCHH cluster, a
#: catalytic triad, and a hydrophobic core patch.
DEFAULT_MOTIFS: Tuple[MotifSpec, ...] = (
    MotifSpec(("C", "C", "H", "H"), conservation=1.0),
    MotifSpec(("D", "H", "S"), conservation=0.9),
    MotifSpec(("F", "I", "L", "V", "W"), conservation=0.75),
)


@dataclass(frozen=True)
class FamilyConfig:
    """Parameters of a synthetic protein family."""

    n_proteins: int = 24
    mean_length: int = 90
    length_spread: int = 15
    contact_window: int = 4
    fold_contacts: int = 60
    seed: int = 23
    motifs: Tuple[MotifSpec, ...] = DEFAULT_MOTIFS

    def __post_init__(self) -> None:
        if self.n_proteins < 1:
            raise DataGenerationError("need at least one protein")
        if self.mean_length < 20:
            raise DataGenerationError("proteins need at least ~20 residues")
        if self.contact_window < 1:
            raise DataGenerationError("contact window must be >= 1")


def generate_protein(
    rng: random.Random,
    config: FamilyConfig,
    motifs_present: Sequence[MotifSpec],
    graph_id: Optional[int] = None,
) -> Graph:
    """One contact-map graph with the given motifs embedded."""
    length = max(20, int(rng.gauss(config.mean_length, config.length_spread)))
    graph = Graph(graph_id)
    for residue in range(length):
        graph.add_vertex(residue, rng.choice(AMINO_ACIDS))

    # Backbone + short-range window contacts (sequence-local density).
    for i in range(length):
        for j in range(i + 1, min(length, i + 1 + config.contact_window)):
            if j == i + 1 or rng.random() < 0.4:
                graph.add_edge(i, j)
    # Long-range fold contacts.
    for _ in range(config.fold_contacts):
        i, j = rng.sample(range(length), 2)
        if abs(i - j) > config.contact_window and not graph.has_edge(i, j):
            graph.add_edge(i, j)

    # Plant each motif: pick residues spread over the chain (disjoint
    # across motifs so one motif cannot overwrite another's residues),
    # set their amino acids, and put them in mutual contact.
    used: set = set()
    for motif in motifs_present:
        available = [r for r in range(length) if r not in used]
        if len(available) < len(motif.residues):
            raise DataGenerationError(
                "protein too short to host all motifs disjointly"
            )
        members = sorted(rng.sample(available, len(motif.residues)))
        used.update(members)
        for residue, acid in zip(members, sorted(motif.residues)):
            _relabel(graph, residue, acid)
        for a_index, u in enumerate(members):
            for v in members[a_index + 1 :]:
                graph.add_edge(u, v)
    return graph


def _relabel(graph: Graph, vertex: int, label: str) -> None:
    """Change one vertex's label in place (rebuild its index entry)."""
    neighbors = set(graph.neighbors(vertex))
    graph.remove_vertex(vertex)
    graph.add_vertex(vertex, label)
    for neighbor in neighbors:
        graph.add_edge(vertex, neighbor)


def protein_family(config: Optional[FamilyConfig] = None) -> GraphDatabase:
    """Generate a protein family's contact-map database."""
    cfg = config if config is not None else FamilyConfig()
    rng = random.Random(cfg.seed)
    database = GraphDatabase(name="protein-family")
    for gid in range(cfg.n_proteins):
        present = [m for m in cfg.motifs if rng.random() < m.conservation]
        database.add(generate_protein(rng, cfg, present, gid))
    return database


def expected_motif_patterns(
    config: Optional[FamilyConfig] = None,
) -> List[Tuple[Tuple[str, ...], float]]:
    """Ground truth: (sorted motif composition, conservation) pairs."""
    cfg = config if config is not None else FamilyConfig()
    return [(tuple(sorted(m.residues)), m.conservation) for m in cfg.motifs]
