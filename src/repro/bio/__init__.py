"""Bio substrate: synthetic protein contact-map families.

Supports the paper's [11] motivation (common structural features of
protein molecular graphs) as a fourth workload domain.
"""

from .contactmaps import (
    AMINO_ACIDS,
    DEFAULT_MOTIFS,
    FamilyConfig,
    MotifSpec,
    expected_motif_patterns,
    generate_protein,
    protein_family,
)

__all__ = [
    "AMINO_ACIDS",
    "DEFAULT_MOTIFS",
    "FamilyConfig",
    "MotifSpec",
    "expected_motif_patterns",
    "generate_protein",
    "protein_family",
]
