"""Chemical substrate: the synthetic CA-like compound database."""

from .atoms import ATOM_LABELS, ATOM_WEIGHTS, sample_atom, sample_atoms
from .fragments import CLIQUE_FRAGMENTS, FRAGMENT_LIBRARY, FRAGMENTS_BY_NAME, Fragment
from .generator import ChemConfig, ca_like_database, chemical_database, generate_compound

__all__ = [
    "ATOM_LABELS",
    "ATOM_WEIGHTS",
    "CLIQUE_FRAGMENTS",
    "ChemConfig",
    "FRAGMENTS_BY_NAME",
    "FRAGMENT_LIBRARY",
    "Fragment",
    "ca_like_database",
    "chemical_database",
    "generate_compound",
    "sample_atom",
    "sample_atoms",
]
