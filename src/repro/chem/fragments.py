"""Fragment templates for synthetic compounds.

Fragments are small labeled graphs (rings, functional groups) planted
across many compounds so the database has frequent substructure — the
reason a 10% support threshold on CA yields interesting patterns in
Figure 7(a).  The three-membered rings are what gives CLAN non-trivial
cliques (a 3-ring *is* a 3-clique); everything larger is sparse, which
is exactly the regime where the complete subgraph miner still runs and
the comparison is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


@dataclass(frozen=True)
class Fragment:
    """A fragment template: local vertex labels and internal edges."""

    name: str
    labels: Tuple[str, ...]
    edges: Tuple[Tuple[int, int], ...]
    #: Probability that a compound receives this fragment.
    plant_rate: float

    @property
    def size(self) -> int:
        return len(self.labels)

    def validate(self) -> None:
        """Check edge endpoints refer to fragment vertices."""
        n = len(self.labels)
        for u, v in self.edges:
            if not (0 <= u < n and 0 <= v < n and u != v):
                raise ValueError(f"fragment {self.name}: bad edge ({u}, {v})")


def _ring(name: str, labels: Sequence[str], plant_rate: float) -> Fragment:
    """A simple cycle over the given labels."""
    n = len(labels)
    edges = tuple((i, (i + 1) % n) for i in range(n))
    return Fragment(name, tuple(labels), edges, plant_rate)


def _chain(name: str, labels: Sequence[str], plant_rate: float) -> Fragment:
    """A simple path over the given labels."""
    edges = tuple((i, i + 1) for i in range(len(labels) - 1))
    return Fragment(name, tuple(labels), edges, plant_rate)


#: The shipped fragment library.  Plant rates are tuned so fragments
#: are frequent at 10–30% support over a few hundred compounds.
FRAGMENT_LIBRARY: Tuple[Fragment, ...] = (
    _ring("benzene", ("C",) * 6, 0.55),
    _ring("pyridine", ("C", "C", "C", "C", "C", "N"), 0.30),
    _ring("furan", ("C", "C", "C", "C", "O"), 0.22),
    _ring("cyclopentane", ("C",) * 5, 0.25),
    # Three-rings: the source of frequent 3-cliques.
    _ring("cyclopropane", ("C", "C", "C"), 0.30),
    _ring("oxirane", ("C", "C", "O"), 0.20),
    _ring("aziridine", ("C", "C", "N"), 0.14),
    _ring("thiirane", ("C", "C", "S"), 0.08),
    _chain("carboxyl", ("C", "O", "O"), 0.35),
    _chain("amide", ("C", "O", "N"), 0.25),
    _chain("thiol-chain", ("C", "C", "S"), 0.15),
    _chain("chloro-chain", ("C", "C", "Cl"), 0.18),
)

FRAGMENTS_BY_NAME: Dict[str, Fragment] = {f.name: f for f in FRAGMENT_LIBRARY}

#: Fragments that are cliques — their label multisets are the planted
#: ground-truth patterns CLAN must find (rings of size 3, edges aside).
CLIQUE_FRAGMENTS: Tuple[Fragment, ...] = tuple(
    f for f in FRAGMENT_LIBRARY if len(f.edges) == f.size * (f.size - 1) // 2 and f.size >= 3
)
