"""Atom alphabet for the synthetic chemical compound database.

The paper's CA database derives from the DTP AIDS Antiviral Screen
compounds; its vertex labels are atom types with organic-chemistry
frequencies (carbon dominating).  We use the same label style so mined
patterns read like fragments.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: (atom label, sampling weight) — roughly organic-compound abundances.
ATOM_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("C", 0.62),
    ("N", 0.12),
    ("O", 0.14),
    ("S", 0.04),
    ("Cl", 0.04),
    ("P", 0.02),
    ("F", 0.01),
    ("Br", 0.01),
)

ATOM_LABELS: Tuple[str, ...] = tuple(label for label, _ in ATOM_WEIGHTS)


def sample_atom(rng: random.Random) -> str:
    """Sample one atom label from the abundance distribution."""
    roll = rng.random()
    cumulative = 0.0
    for label, weight in ATOM_WEIGHTS:
        cumulative += weight
        if roll < cumulative:
            return label
    return ATOM_WEIGHTS[-1][0]


def sample_atoms(rng: random.Random, count: int) -> List[str]:
    """Sample ``count`` atom labels."""
    return [sample_atom(rng) for _ in range(count)]
