"""Synthetic CA-like chemical compound database.

The paper's CA database (derived from the DTP AIDS Antiviral Screen
set, provided privately by the FSG authors) has 422 graphs averaging
39 vertices and 42 edges.  This generator reproduces those published
characteristics: each compound is a random labeled tree (the molecular
skeleton) decorated with fragments from a shared library, giving
``|E| ≈ |V| + 3`` and plenty of cross-compound common substructure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..exceptions import DataGenerationError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .atoms import sample_atom
from .fragments import FRAGMENT_LIBRARY, Fragment


@dataclass(frozen=True)
class ChemConfig:
    """Generator parameters (defaults match the published CA stats)."""

    n_compounds: int = 422
    mean_vertices: float = 39.0
    vertex_spread: float = 11.0
    min_vertices: int = 10
    max_vertices: int = 90
    extra_edge_rate: float = 0.02
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_compounds < 1:
            raise DataGenerationError("need at least one compound")
        if self.min_vertices < 4:
            raise DataGenerationError("compounds need at least 4 atoms")
        if self.max_vertices < self.min_vertices:
            raise DataGenerationError("max_vertices must be >= min_vertices")


def _plant_fragment(graph: Graph, fragment: Fragment, rng: random.Random) -> None:
    """Attach one fragment instance to a random skeleton atom."""
    base = max(graph.vertices(), default=-1) + 1
    for offset, label in enumerate(fragment.labels):
        graph.add_vertex(base + offset, label)
    for u, v in fragment.edges:
        graph.add_edge(base + u, base + v)
    anchors = [v for v in graph.vertices() if v < base]
    if anchors:
        graph.add_edge(rng.choice(anchors), base)


def generate_compound(
    rng: random.Random,
    config: ChemConfig,
    graph_id: Optional[int] = None,
) -> Graph:
    """Generate one compound graph."""
    graph = Graph(graph_id)
    # Decide the fragment budget first so the skeleton absorbs the rest
    # of the vertex budget.
    fragments: List[Fragment] = [
        f for f in FRAGMENT_LIBRARY if rng.random() < f.plant_rate
    ]
    target = int(rng.gauss(config.mean_vertices, config.vertex_spread))
    target = max(config.min_vertices, min(config.max_vertices, target))
    skeleton_size = max(3, target - sum(f.size for f in fragments))

    # Random labeled tree skeleton (uniform random attachment).
    graph.add_vertex(0, sample_atom(rng))
    for vertex in range(1, skeleton_size):
        graph.add_vertex(vertex, sample_atom(rng))
        graph.add_edge(vertex, rng.randrange(vertex))

    for fragment in fragments:
        _plant_fragment(graph, fragment, rng)

    # A sprinkle of extra ring-closure edges keeps |E| slightly above
    # |V| like real molecules with fused rings.
    vertices = list(graph.vertices())
    extra = int(len(vertices) * config.extra_edge_rate)
    for _ in range(extra):
        u, v = rng.sample(vertices, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def chemical_database(config: Optional[ChemConfig] = None) -> GraphDatabase:
    """Generate the full CA-like database."""
    cfg = config if config is not None else ChemConfig()
    rng = random.Random(cfg.seed)
    database = GraphDatabase(name="CA-synthetic")
    for gid in range(cfg.n_compounds):
        database.add(generate_compound(rng, cfg, gid))
    return database


def ca_like_database(n_compounds: int = 422, seed: int = 11) -> GraphDatabase:
    """Convenience wrapper: CA-shaped database of the requested size."""
    return chemical_database(ChemConfig(n_compounds=n_compounds, seed=seed))
