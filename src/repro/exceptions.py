"""Exception hierarchy for the CLAN reproduction library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class at API
boundaries while still distinguishing precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """A graph is structurally invalid or an operation on it is illegal."""


class VertexNotFoundError(GraphError):
    """A referenced vertex id does not exist in the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} does not exist in this graph")
        self.vertex = vertex


class DuplicateVertexError(GraphError):
    """A vertex id was added twice to the same graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} already exists in this graph")
        self.vertex = vertex


class SelfLoopError(GraphError):
    """A self loop was added; clique-transaction graphs are simple graphs."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"self loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class DatabaseError(ReproError):
    """A graph transaction database is invalid or empty where it may not be."""


class PatternError(ReproError):
    """A clique pattern or canonical form is malformed."""


class MiningError(ReproError):
    """The miner was configured inconsistently or hit an internal limit."""


class InvalidSupportError(MiningError):
    """The minimum support threshold is out of range."""

    def __init__(self, value: object, reason: str) -> None:
        super().__init__(f"invalid minimum support {value!r}: {reason}")
        self.value = value


class FormatError(ReproError):
    """A file being parsed does not conform to the expected format."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class DataGenerationError(ReproError):
    """A synthetic data generator received impossible parameters."""
