"""The experiment registry: every table and figure of the paper's §5.

Each entry names the artefact, the workload that drives it, the
modules that implement the pieces, and the benchmark file that
regenerates it.  ``python -m repro experiments`` prints this index; it
is also the source of truth for DESIGN.md's experiment table (tested
for agreement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Experiment:
    """One reproducible artefact of the paper's evaluation section."""

    key: str
    paper_item: str
    description: str
    workload: str
    modules: Tuple[str, ...]
    benchmark: str


EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        key="table1",
        paper_item="Table 1",
        description="Database characteristics: #graphs, avg #vertices, avg #edges",
        workload="CA-synthetic; stock-market-0.90..0.95 (11 periods each)",
        modules=(
            "repro.chem.generator",
            "repro.stockmarket.datasets",
            "repro.graphdb.stats",
        ),
        benchmark="benchmarks/test_table1_datasets.py",
    ),
    Experiment(
        key="fig5",
        paper_item="Figure 5",
        description="Maximum frequent closed clique (12 fund tickers) at theta=0.9, min_sup=100%",
        workload="stock-market-0.90, min_sup=11/11, report size >= 3",
        modules=(
            "repro.stockmarket.marketgraph",
            "repro.core.miner",
            "repro.stockmarket.analysis",
        ),
        benchmark="benchmarks/test_fig5_max_clique.py",
    ),
    Experiment(
        key="fig6a",
        paper_item="Figure 6(a)",
        description="CLAN runtime vs min_sup (100% -> 85%) on the six stock-market databases",
        workload="theta in {0.90..0.95}, min_sup in {100, 95, 90, 85}%",
        modules=("repro.core.miner", "repro.bench.harness"),
        benchmark="benchmarks/test_fig6a_runtime_vs_support.py",
    ),
    Experiment(
        key="fig6b",
        paper_item="Figure 6(b)",
        description="Number of closed cliques vs clique size at 100% support, six databases",
        workload="theta in {0.90..0.95}, min_sup=100%",
        modules=("repro.core.results",),
        benchmark="benchmarks/test_fig6b_size_distribution.py",
    ),
    Experiment(
        key="fig7a",
        paper_item="Figure 7(a)",
        description="CLAN vs complete-subgraph-miner runtime on the sparse CA database",
        workload="CA-synthetic subset, min_sup sweep (30% -> 15%)",
        modules=("repro.baselines.gspan", "repro.baselines.subgraph_filter", "repro.core.miner"),
        benchmark="benchmarks/test_fig7a_vs_subgraph_miner.py",
    ),
    Experiment(
        key="fig7b",
        paper_item="Figure 7(b)",
        description="Linear runtime scalability against database replication x2..x16",
        workload="stock-market-0.95/-0.94 @85%; CA @10%; factors 2,4,8,16",
        modules=("repro.graphdb.database", "repro.core.miner"),
        benchmark="benchmarks/test_fig7b_scalability.py",
    ),
    Experiment(
        key="ablation",
        paper_item="(ours) Section 4 ablation",
        description="Effect of each pruning method and embedding strategy",
        workload="running example; stock-market-0.90; CA-synthetic",
        modules=("repro.core.config", "repro.core.miner", "repro.baselines.naive"),
        benchmark="benchmarks/test_ablation_pruning.py",
    ),
    Experiment(
        key="canonical-forms",
        paper_item="(ours) Section 4.1 canonical-form ablation",
        description="Cost of CLAN's string form vs minimum DFS code vs minimum matrix code on k-cliques",
        workload="labeled k-cliques, k = 3..8",
        modules=("repro.core.canonical", "repro.baselines.dfscode", "repro.graphdb.matrix"),
        benchmark="benchmarks/test_ablation_canonical_forms.py",
    ),
    Experiment(
        key="bfs-vs-dfs",
        paper_item="(ours) Section 4.2 search-strategy ablation",
        description="CLAN's depth-first search vs FSG-style level-wise breadth-first search",
        workload="stock-market-0.95/0.93/0.90 @100%; stock-market-0.90 @85%",
        modules=("repro.baselines.apriori", "repro.core.miner"),
        benchmark="benchmarks/test_ablation_bfs_vs_dfs.py",
    ),
    Experiment(
        key="parallel",
        paper_item="(ours) parallel-mining extension",
        description="Wall-clock effect of partitioning DFS roots across processes",
        workload="stock-market-0.90 @85%; 1/2/4 processes",
        modules=("repro.core.executor",),
        benchmark="benchmarks/test_parallel_scaling.py",
    ),
    Experiment(
        key="quasiclique",
        paper_item="(ours) Section 6 future work",
        description="Closed quasi-clique mining extension, gamma sweep",
        workload="CA-synthetic subset; gamma in {1.0, 0.9, 0.8, 0.6}",
        modules=("repro.core.quasiclique",),
        benchmark="benchmarks/test_quasiclique_extension.py",
    ),
)

EXPERIMENTS_BY_KEY: Dict[str, Experiment] = {e.key: e for e in EXPERIMENTS}


def registry_report() -> str:
    """Human-readable index of all registered experiments."""
    lines: List[str] = []
    for experiment in EXPERIMENTS:
        lines.append(f"{experiment.key}: {experiment.paper_item}")
        lines.append(f"  what:      {experiment.description}")
        lines.append(f"  workload:  {experiment.workload}")
        lines.append(f"  modules:   {', '.join(experiment.modules)}")
        lines.append(f"  regenerate: pytest {experiment.benchmark} --benchmark-only -s")
    return "\n".join(lines)
