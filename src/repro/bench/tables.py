"""Text-table rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and diffable.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_table(
    header: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table with a separator rule."""
    text_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [
        max([len(header[i])] + [len(row[i]) for row in text_rows])
        for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    series_names: Sequence[str],
    xs: Sequence[Any],
    columns: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render several series sharing one x axis as one table.

    ``columns[i]`` is the y column of ``series_names[i]``; this is the
    layout of the paper's multi-curve figures (one curve per database).
    """
    if len(series_names) != len(columns):
        raise ValueError("one column per series name is required")
    for column in columns:
        if len(column) != len(xs):
            raise ValueError("every series must cover every x value")
    header = [x_label] + list(series_names)
    rows = [[x] + [column[i] for column in columns] for i, x in enumerate(xs)]
    return format_table(header, rows, title=title)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
