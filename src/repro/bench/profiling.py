"""Profiling helpers for performance investigation.

`profiled()` wraps any callable in cProfile and returns a structured
summary of where the time went — used when tuning the miner's hot loops
and handy for users investigating slow workloads.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from io import StringIO
from typing import Any, Callable, List, Tuple


@dataclass(frozen=True)
class HotSpot:
    """One function's share of a profile."""

    function: str
    calls: int
    cumulative_seconds: float
    own_seconds: float


@dataclass(frozen=True)
class ProfileReport:
    """Outcome of a profiled call."""

    value: Any
    total_seconds: float
    hotspots: Tuple[HotSpot, ...]

    def render(self, limit: int = 10) -> str:
        lines = [f"total: {self.total_seconds:.3f}s; top functions by cumulative time:"]
        for spot in self.hotspots[:limit]:
            lines.append(
                f"  {spot.cumulative_seconds:7.3f}s cum  {spot.own_seconds:7.3f}s own  "
                f"{spot.calls:>8} calls  {spot.function}"
            )
        return "\n".join(lines)


def profiled(fn: Callable[[], Any], top: int = 25) -> ProfileReport:
    """Run ``fn`` under cProfile and summarise.

    Only functions from this library (path contains ``repro``) are kept
    in the hotspot list, so the report points at actionable code.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        value = fn()
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler, stream=StringIO())
    total = getattr(stats, "total_tt", 0.0)
    hotspots: List[HotSpot] = []
    entries = getattr(stats, "stats", {})
    for (filename, line, name), (cc, nc, tt, ct, _callers) in entries.items():
        if "repro" not in filename:
            continue
        short = filename.rsplit("repro", 1)[-1].lstrip("/\\")
        hotspots.append(
            HotSpot(
                function=f"repro/{short}:{line}({name})",
                calls=nc,
                cumulative_seconds=ct,
                own_seconds=tt,
            )
        )
    hotspots.sort(key=lambda s: -s.cumulative_seconds)
    return ProfileReport(
        value=value,
        total_seconds=float(total),
        hotspots=tuple(hotspots[:top]),
    )
