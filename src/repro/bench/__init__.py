"""Benchmark harness: timing, sweeps, tables, the experiment registry."""

from .ascii import horizontal_bars, multi_series_chart, series_chart
from .experiments import EXPERIMENTS, EXPERIMENTS_BY_KEY, Experiment, registry_report
from .harness import (
    Series,
    TimedRun,
    bench_scale,
    hardware_context,
    runtime_sweep,
    sweep,
    timed,
    timed_or_budget,
)
from .tables import format_series_table, format_table

__all__ = [
    "EXPERIMENTS",
    "horizontal_bars",
    "multi_series_chart",
    "series_chart",
    "EXPERIMENTS_BY_KEY",
    "Experiment",
    "Series",
    "TimedRun",
    "bench_scale",
    "format_series_table",
    "format_table",
    "hardware_context",
    "registry_report",
    "runtime_sweep",
    "sweep",
    "timed",
    "timed_or_budget",
]
