"""ASCII chart rendering for benchmark series.

The paper's figures are log-scale line charts; benchmarks print their
data as tables plus these terminal-friendly charts so the *shape* is
visible at a glance in `benchmarks/results/`.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .harness import Series


def horizontal_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    log_scale: bool = False,
    unit: str = "",
) -> str:
    """Simple horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("one value per label is required")
    if not labels:
        return "(no data)"
    if any(v < 0 for v in values):
        raise ValueError("bar charts require non-negative values")

    if log_scale:
        floor = min((v for v in values if v > 0), default=1.0)
        def scaled(v: float) -> float:
            return math.log10(v / floor) + 1.0 if v > 0 else 0.0
    else:
        def scaled(v: float) -> float:
            return v

    top = max((scaled(v) for v in values), default=1.0) or 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * scaled(value) / top))
        shown = f"{value:.3g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar} {shown}")
    return "\n".join(lines)


def series_chart(
    series: Series,
    width: int = 50,
    log_scale: bool = False,
) -> str:
    """Render one :class:`Series` as labelled horizontal bars."""
    labels = [str(x) for x in series.xs()]
    values = [float(y) for y in series.ys()]
    header = f"# {series.name} ({series.y_label} by {series.x_label})"
    return header + "\n" + horizontal_bars(labels, values, width, log_scale)


def multi_series_chart(
    x_labels: Sequence[str],
    series_names: Sequence[str],
    columns: Sequence[Sequence[float]],
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Several series over a shared x axis, stacked in blocks.

    The layout of the paper's multi-curve figures transposed for
    terminals: one block per x value, one bar per series.
    """
    if len(series_names) != len(columns):
        raise ValueError("one column per series name is required")
    blocks: List[str] = []
    for index, x in enumerate(x_labels):
        values = [float(column[index]) for column in columns]
        blocks.append(
            f"{x}:\n"
            + _indent(horizontal_bars(list(series_names), values, width, log_scale))
        )
    return "\n".join(blocks)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
