"""Benchmark harness utilities: timed runs, sweeps, series.

The benchmark scripts under ``benchmarks/`` use these helpers so every
figure regeneration follows the same pattern: build the workload, run a
parameter sweep, and print a labelled series (the rows the paper's
plots are drawn from).
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class TimedRun:
    """Outcome of one timed call."""

    label: str
    seconds: float
    value: Any = None
    completed: bool = True
    note: str = ""

    def cell(self) -> str:
        """Render as a table cell; incomplete runs show their note."""
        if not self.completed:
            return self.note or "did not complete"
        return f"{self.seconds:.3f}s"


def timed(label: str, fn: Callable[[], Any]) -> TimedRun:
    """Run ``fn`` once under a wall-clock timer."""
    started = time.perf_counter()
    value = fn()
    return TimedRun(label=label, seconds=time.perf_counter() - started, value=value)


def timed_or_budget(label: str, fn: Callable[[], Any], note: str = "budget exceeded") -> TimedRun:
    """Run ``fn``; a raised exception records a "did not complete" cell.

    This is how the dense-database cells of Figure 6/7 report the
    baseline's failure mode (the paper: "ADI-Mine could not complete
    after running for several days").
    """
    started = time.perf_counter()
    try:
        value = fn()
    except Exception as exc:  # noqa: BLE001 - the budget signal is an exception
        return TimedRun(
            label=label,
            seconds=time.perf_counter() - started,
            completed=False,
            note=f"{note}: {exc.__class__.__name__}",
        )
    return TimedRun(label=label, seconds=time.perf_counter() - started, value=value)


@dataclass
class Series:
    """A named series of (x, y) points — one curve of a paper figure."""

    name: str
    x_label: str
    y_label: str
    points: List[Tuple[Any, Any]] = field(default_factory=list)

    def add(self, x: Any, y: Any) -> None:
        self.points.append((x, y))

    def xs(self) -> List[Any]:
        return [x for x, _ in self.points]

    def ys(self) -> List[Any]:
        return [y for _, y in self.points]

    def render(self) -> str:
        """Aligned two-column text rendering."""
        header = f"# {self.name}: {self.x_label} -> {self.y_label}"
        width = max([len(str(x)) for x, _ in self.points] + [len(self.x_label)])
        lines = [header]
        for x, y in self.points:
            y_text = f"{y:.4f}" if isinstance(y, float) else str(y)
            lines.append(f"{str(x).ljust(width)}  {y_text}")
        return "\n".join(lines)


def sweep(
    name: str,
    x_label: str,
    y_label: str,
    xs: Sequence[Any],
    fn: Callable[[Any], Any],
) -> Series:
    """Evaluate ``fn`` over ``xs`` and collect a series."""
    series = Series(name=name, x_label=x_label, y_label=y_label)
    for x in xs:
        series.add(x, fn(x))
    return series


def runtime_sweep(
    name: str,
    x_label: str,
    xs: Sequence[Any],
    fn: Callable[[Any], Any],
) -> Series:
    """Sweep that records wall-clock seconds of each call."""
    def run(x: Any) -> float:
        started = time.perf_counter()
        fn(x)
        return time.perf_counter() - started

    return sweep(name, x_label, "runtime (s)", xs, run)


def hardware_context() -> Dict[str, Any]:
    """The machine/runtime facts every ``BENCH_*.json`` should carry.

    Absolute seconds are meaningless without them: a "speedup" from a
    2-core CI runner and one from a 32-core workstation are different
    experiments.  Recorded per artefact so perf-trajectory comparisons
    across PRs can tell a code change from a machine change.
    """
    try:
        usable_cpus: Any = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux / restricted
        usable_cpus = None
    try:
        import numpy

        numpy_version: Any = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        # CPUs this process may actually run on (cgroup/affinity aware);
        # the honest denominator for parallel-scaling efficiency.
        "usable_cpus": usable_cpus,
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "sys_platform": sys.platform,
    }


# ----------------------------------------------------------------------
# Benchmark scale control
# ----------------------------------------------------------------------
_VALID_SCALES = ("tiny", "small", "medium", "paper")


def bench_scale(default: str = "small") -> str:
    """The benchmark scale, overridable via ``REPRO_BENCH_SCALE``.

    ``tiny`` is for CI smoke runs, ``small`` the default, ``medium``
    for longer sessions, ``paper`` the published problem size (slow in
    pure Python; see DESIGN.md).
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", default).strip().lower()
    if scale not in _VALID_SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={scale!r} is not one of {_VALID_SCALES}"
        )
    return scale
