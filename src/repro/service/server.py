"""The mining service: an asyncio HTTP control plane over `repro.mine`.

One long-running process owns one :class:`GraphDatabase` and mines it
on behalf of many tenants.  Clients speak plain HTTP/1.1 and JSON —
the body of ``POST /v1/jobs`` *is* ``MiningRequest.to_json()``, the
body of ``GET /v1/jobs/<id>/result`` *is*
``MiningResultEnvelope.to_dict()`` — so the typed request/result API
of :mod:`repro.core.api` is the wire format, not a parallel schema.

Endpoints (all under ``/v1``):

========  =============================  =======================================
method    path                           meaning
========  =============================  =======================================
POST      /v1/jobs                       submit a MiningRequest (``X-Clan-Tenant``
                                         header names the tenant); returns the job id
GET       /v1/jobs                       list jobs (``?tenant=`` filters)
GET       /v1/jobs/<id>                  one job's status
POST      /v1/jobs/<id>/cancel           cancel: dequeue if queued, else
                                         cooperatively stop the running session
GET       /v1/jobs/<id>/result           the result envelope; 404 until finished
                                         unless ``?wait=1`` long-polls
GET       /v1/jobs/<id>/trace            live session events as JSONL; the
                                         stream ends (EOF) when the job finishes
GET       /v1/jobs/<id>/events           the same stream as Server-Sent Events,
                                         terminated by an ``event: done`` frame
POST      /v1/sweeps                     fan a threshold sweep out into one job
                                         per ``min_sup``, all sharing the cache
GET       /v1/stats                      queue depths, tenants, cache counters
GET       /v1/healthz                    liveness
========  =============================  =======================================

Scheduling is two-level: a :class:`FairJobQueue` round-robins between
tenants, and at most ``max_concurrency`` jobs mine at once in a thread
pool (mining holds the GIL only between C-level set operations, and
``processes>1`` requests fork their own workers anyway).  Each job runs
a :class:`MiningSession` with the request's budget — or the service's
``default_budget`` SLO when the request has none — an event sink that
feeds the job's watchers, and the one :class:`SharedCache` all tenants
share, persisted to ``clan-cache.json`` in the state directory.

Every job transition is persisted to ``jobs/<id>.json``, every finished
root to ``checkpoints/<id>.json``; a server that crashes (or is
:meth:`killed <MiningService.kill>`) and restarts re-enqueues its
unfinished jobs and resumes them from their checkpoints, re-mining only
the roots that had not completed.  Because result envelopes are
canonical over request + patterns only (statistics live outside the
canonical section), a resumed job's result is byte-identical to an
uninterrupted one.

The server is stdlib-only: ``asyncio.start_server`` plus a small
HTTP/1.1 reader/writer.  Responses close the connection (``Connection:
close``), which is also what lets the streaming endpoints signal
completion by EOF.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..core.api import MiningRequest, MiningResultEnvelope
from ..core.session import (
    EventSink,
    MiningBudget,
    MiningEvent,
    MiningSession,
    RootFinished,
    event_to_dict,
)
from ..exceptions import FormatError, MiningError, ReproError
from ..graphdb.database import GraphDatabase
from ..io.runlog import (
    load_or_create_cache,
    open_checkpoint,
    open_envelope,
    save_cache,
    save_checkpoint,
    save_envelope,
)
from .jobs import MiningJob, SharedCache
from .queue import FairJobQueue
from .tenants import DEFAULT_TENANT, TenantBook

_PROTOCOL = "HTTP/1.1"
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
}


class _JobSink(EventSink):
    """Bridges a mining thread's session events into the event loop.

    Every event is posted to the loop thread for the job's watchers;
    every :class:`RootFinished` additionally snapshots the session's
    checkpoint to disk *from the mining thread* (the completed-roots
    map is updated before the heartbeat is emitted, so the snapshot is
    consistent), which is what makes a hard kill resumable.
    """

    def __init__(self, service: "MiningService", job: MiningJob) -> None:
        self._service = service
        self._job = job

    def emit(self, event: MiningEvent) -> None:
        service, job = self._service, self._job
        if (
            isinstance(event, RootFinished)
            and job.session is not None
            and not service._killed
        ):
            save_checkpoint(
                job.session.checkpoint(), service._checkpoint_path(job.job_id)
            )
        service._post(service._publish_event, job, event_to_dict(event))


class MiningService:
    """A multi-tenant mining server over one graph database.

    Parameters
    ----------
    database:
        The :class:`GraphDatabase` every job mines.
    state_dir:
        Directory for the durable control-plane state: job records,
        result envelopes, per-job checkpoints, and the shared
        ``clan-cache.json``.  Point a new server at an old directory
        to recover its jobs.
    host, port:
        Bind address; ``port=0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    max_concurrency:
        How many jobs mine at once; queued jobs wait fairly.
    default_budget:
        Optional :class:`MiningBudget` applied as the per-job SLO for
        requests that do not carry their own budget.
    """

    def __init__(
        self,
        database: GraphDatabase,
        state_dir: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 2,
        default_budget: Optional[MiningBudget] = None,
        storage_root: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_concurrency < 1:
            raise MiningError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.database = database
        #: When set, jobs may carry an ``X-Clan-Database`` storage URI
        #: naming a SQLite store inside this directory; the job then
        #: mines that store instead of :attr:`database`.
        self.storage_root = Path(storage_root) if storage_root is not None else None
        self.state_dir = Path(state_dir)
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.default_budget = default_budget

        self.tenants = TenantBook()
        self.cache: SharedCache = SharedCache()
        #: Job ids in the order the scheduler started them (the
        #: fairness tests read this).
        self.execution_order: List[str] = []

        self._jobs: Dict[str, MiningJob] = {}
        self._queue = FairJobQueue()
        self._signals: Dict[str, asyncio.Event] = {}
        self._cancel_requested: set = set()
        self._seq = 0
        self._slots = max_concurrency
        self._killed = False
        self._stopping = False
        self._cache_io_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._kick: Optional[asyncio.Event] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # State directory layout
    # ------------------------------------------------------------------
    def _jobs_dir(self) -> Path:
        return self.state_dir / "jobs"

    def _job_path(self, job_id: str) -> Path:
        return self._jobs_dir() / f"{job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.state_dir / "results" / f"{job_id}.json"

    def _checkpoint_path(self, job_id: str) -> Path:
        return self.state_dir / "checkpoints" / f"{job_id}.json"

    def _persist_job(self, job: MiningJob) -> None:
        path = self._job_path(job.job_id)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(job.to_dict(), stream, indent=1)
            stream.write("\n")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the server, recover persisted jobs, start scheduling."""
        self._loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrency, thread_name_prefix="clan-job"
        )
        for sub in ("jobs", "results", "checkpoints"):
            (self.state_dir / sub).mkdir(parents=True, exist_ok=True)
        self.cache = SharedCache.wrap(load_or_create_cache(self.state_dir))
        self._recover_jobs()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = self._loop.create_task(self._scheduler())
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def _recover_jobs(self) -> None:
        """Re-read job records; re-enqueue unfinished ones for resume."""
        for path in sorted(self._jobs_dir().glob("*.json")):
            with open(path, "r", encoding="utf-8") as stream:
                try:
                    job = MiningJob.from_dict(json.load(stream))
                except (MiningError, KeyError, TypeError, ValueError) as exc:
                    raise FormatError(f"bad job record {path.name}: {exc}") from exc
            self._jobs[job.job_id] = job
            tenant = self.tenants.get(job.tenant)
            tenant.submitted += 1
            if job.state == "done":
                tenant.completed += 1
            elif job.state == "failed":
                tenant.failed += 1
            elif job.state == "cancelled":
                tenant.cancelled += 1
            else:
                job.state = "queued"
                self._persist_job(job)
                self._queue.push(job.tenant, job.job_id)
            tail = job.job_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                self._seq = max(self._seq, int(tail))

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, stop scheduling."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    def kill(self) -> None:
        """Hard stop, simulating a crash (call from the loop thread).

        Running sessions are cancelled so their threads wind down, but
        nothing further is persisted: job records keep their last
        on-disk state (``running``/``queued``) and results are not
        written — exactly what a power loss would leave behind.  A new
        service on the same ``state_dir`` recovers and resumes.
        """
        self._killed = True
        self._stopping = True
        for job in self._jobs.values():
            if job.session is not None and not job.finished:
                job.session.cancel()
        if self._server is not None:
            self._server.close()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Background-thread harness (tests and `clan serve`)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> Tuple[str, int]:
        """Run the service's event loop in a daemon thread."""
        ready = threading.Event()
        failure: List[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # pragma: no cover - startup bugs
                failure.append(exc)
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="clan-serve", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            raise failure[0]
        return self.address

    def stop_in_thread(self, timeout: float = 10.0) -> None:
        """Gracefully stop a :meth:`start_in_thread` service (idempotent)."""
        loop = self._loop
        if loop is None or self._thread is None or not loop.is_running():
            return
        asyncio.run_coroutine_threadsafe(self.stop(), loop).result(timeout)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout)

    def kill_in_thread(self, timeout: float = 10.0) -> None:
        """Hard-kill a :meth:`start_in_thread` service (crash drill)."""
        loop = self._loop
        if loop is None or self._thread is None:
            return

        def _do() -> None:
            self.kill()
            loop.stop()

        loop.call_soon_threadsafe(_do)
        self._thread.join(timeout)

    async def run_forever(
        self, announce: Optional[Callable[[str, int], None]] = None
    ) -> None:
        """`clan serve`: start and serve until cancelled.

        ``announce(host, port)`` is called once the socket is bound —
        the CLI prints the listening address with it.
        """
        host, port = await self.start()
        if announce is not None:
            announce(host, port)
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Scheduling and job execution
    # ------------------------------------------------------------------
    def _post(self, callback: Callable, *args: Any) -> None:
        """Schedule a callback on the loop thread (from any thread)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:  # loop shut down under us (kill)
            pass

    def _kick_scheduler(self) -> None:
        if self._kick is not None:
            self._kick.set()

    async def _scheduler(self) -> None:
        assert self._kick is not None
        while not self._stopping:
            while self._slots > 0 and len(self._queue):
                popped = self._queue.pop_next()
                if popped is None:
                    break
                _tenant, job_id = popped
                job = self._jobs[job_id]
                self._slots -= 1
                self._start_job(job)
            self._kick.clear()
            await self._kick.wait()

    def _start_job(self, job: MiningJob) -> None:
        job.state = "running"
        self._persist_job(job)
        self.execution_order.append(job.job_id)
        self._wake(job.job_id)
        assert self._loop is not None and self._pool is not None
        self._loop.run_in_executor(self._pool, self._run_job_thread, job)

    def _resolve_database(self, job: MiningJob) -> GraphDatabase:
        """The database a job mines: the default, or its storage URI."""
        if not job.database_uri:
            return self.database
        if self.storage_root is None:
            raise MiningError(
                "this service has no storage root; jobs cannot name a database"
            )
        from ..graphdb import open_source

        root = self.storage_root.resolve()
        path = (root / job.database_uri).resolve()
        if root != path and root not in path.parents:
            raise MiningError(
                f"database uri {job.database_uri!r} escapes the storage root"
            )
        return GraphDatabase(source=open_source(path))

    def _run_job_thread(self, job: MiningJob) -> None:
        """Mine one job (worker thread; all blocking I/O lives here)."""
        state, error = "done", None
        try:
            resume_from = None
            checkpoint_path = self._checkpoint_path(job.job_id)
            if checkpoint_path.exists():
                resume_from = open_checkpoint(checkpoint_path)
            session = MiningSession.from_request(
                self._resolve_database(job),
                job.request,
                sinks=(_JobSink(self, job),),
                resume_from=resume_from,
                cache=self.cache,
                budget=job.request.budget or self.default_budget,
            )
            job.session = session
            if job.job_id in self._cancel_requested:
                session.cancel()
            result = session.run()
            if self._killed:
                return
            envelope = MiningResultEnvelope.from_result(job.request, result)
            save_envelope(envelope, self._result_path(job.job_id))
            if job.request.use_cache:
                with self._cache_io_lock:
                    save_cache(self.cache, self.state_dir)
            if job.job_id in self._cancel_requested:
                state = "cancelled"
        except ReproError as exc:
            state, error = "failed", str(exc)
        except Exception as exc:  # pragma: no cover - defensive
            state, error = "failed", f"{type(exc).__name__}: {exc}"
        if self._killed:
            return
        self._post(self._finish_job, job, state, error)

    def _finish_job(
        self,
        job: MiningJob,
        state: str,
        error: Optional[str],
        release_slot: bool = True,
    ) -> None:
        job.state = state
        job.error = error
        self._persist_job(job)
        tenant = self.tenants.get(job.tenant)
        if state == "done":
            tenant.completed += 1
        elif state == "failed":
            tenant.failed += 1
        elif state == "cancelled":
            tenant.cancelled += 1
        if release_slot:
            self._slots += 1
        self._wake(job.job_id)
        self._kick_scheduler()

    # ------------------------------------------------------------------
    # Event watching
    # ------------------------------------------------------------------
    def _signal(self, job_id: str) -> asyncio.Event:
        signal = self._signals.get(job_id)
        if signal is None:
            signal = asyncio.Event()
            self._signals[job_id] = signal
        return signal

    def _wake(self, job_id: str) -> None:
        signal = self._signals.pop(job_id, None)
        if signal is not None:
            signal.set()

    def _publish_event(self, job: MiningJob, payload: Dict[str, Any]) -> None:
        job.events.append(payload)
        self._wake(job.job_id)

    async def _each_job_event(self, job: MiningJob, emit) -> None:
        """Drive ``emit(payload)`` for every event until the job ends."""
        index = 0
        while True:
            signal = self._signal(job.job_id)
            while index < len(job.events):
                await emit(job.events[index])
                index += 1
            if job.finished:
                return
            await signal.wait()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            await self._dispatch(method, target, headers, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        content_type: str = "application/json",
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"{_PROTOCOL} {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    async def _start_stream(
        writer: asyncio.StreamWriter, content_type: str
    ) -> None:
        head = (
            f"{_PROTOCOL} 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        parts = [part for part in path.split("/") if part]
        try:
            if parts == ["v1", "healthz"] and method == "GET":
                await self._respond(
                    writer, 200, {"status": "ok", "jobs": len(self._jobs)}
                )
            elif parts == ["v1", "stats"] and method == "GET":
                await self._respond(writer, 200, self.stats())
            elif parts == ["v1", "jobs"] and method == "POST":
                await self._handle_submit(headers, body, writer)
            elif parts == ["v1", "sweeps"] and method == "POST":
                await self._handle_sweep(headers, body, writer)
            elif parts == ["v1", "jobs"] and method == "GET":
                tenant = query.get("tenant")
                jobs = [
                    job.status()
                    for job in self._jobs.values()
                    if tenant is None or job.tenant == tenant
                ]
                await self._respond(writer, 200, {"jobs": jobs})
            elif len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
                await self._dispatch_job(method, parts[2:], query, writer)
            else:
                await self._respond(
                    writer, 404, {"error": f"no such endpoint: {method} {path}"}
                )
        except (MiningError, FormatError, ValueError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})

    async def _dispatch_job(
        self,
        method: str,
        parts: List[str],
        query: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        job = self._jobs.get(parts[0])
        if job is None:
            await self._respond(
                writer, 404, {"error": f"no such job: {parts[0]}"}
            )
            return
        rest = parts[1:]
        if not rest and method == "GET":
            await self._respond(writer, 200, job.status())
        elif rest == ["cancel"] and method == "POST":
            await self._handle_cancel(job, writer)
        elif rest == ["result"] and method == "GET":
            await self._handle_result(job, query, writer)
        elif rest == ["trace"] and method == "GET":
            await self._start_stream(writer, "application/x-ndjson")

            async def emit_jsonl(payload: Dict[str, Any]) -> None:
                writer.write((json.dumps(payload) + "\n").encode("utf-8"))
                await writer.drain()

            await self._each_job_event(job, emit_jsonl)
        elif rest == ["events"] and method == "GET":
            await self._start_stream(writer, "text/event-stream")

            async def emit_sse(payload: Dict[str, Any]) -> None:
                writer.write(
                    f"data: {json.dumps(payload)}\n\n".encode("utf-8")
                )
                await writer.drain()

            await self._each_job_event(job, emit_sse)
            writer.write(
                f"event: done\ndata: {json.dumps(job.status())}\n\n".encode("utf-8")
            )
            await writer.drain()
        else:
            await self._respond(
                writer,
                405,
                {"error": f"unsupported: {method} on job {'/'.join(rest)}"},
            )

    # ------------------------------------------------------------------
    # Endpoint bodies
    # ------------------------------------------------------------------
    def submit(
        self,
        request: MiningRequest,
        tenant: str = DEFAULT_TENANT,
        database_uri: Optional[str] = None,
    ) -> MiningJob:
        """Register and enqueue a job (loop thread; HTTP POST body)."""
        if self._stopping:
            raise MiningError("service is shutting down")
        if database_uri and self.storage_root is None:
            raise MiningError(
                "this service has no storage root; jobs cannot name a database"
            )
        self._seq += 1
        job = MiningJob(
            job_id=f"job-{self._seq:06d}",
            tenant=tenant,
            request=request,
            database_uri=database_uri or None,
        )
        self._jobs[job.job_id] = job
        self.tenants.get(tenant).submitted += 1
        self._persist_job(job)
        self._queue.push(tenant, job.job_id)
        self._kick_scheduler()
        return job

    async def _handle_submit(
        self, headers: Dict[str, str], body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        tenant = headers.get("x-clan-tenant", DEFAULT_TENANT).strip() or DEFAULT_TENANT
        # The request body is the exact MiningRequest wire format, so
        # the storage URI rides a header rather than a payload key.
        database_uri = headers.get("x-clan-database", "").strip() or None
        request = MiningRequest.from_json(body.decode("utf-8"))
        job = self.submit(request, tenant, database_uri=database_uri)
        await self._respond(writer, 202, job.status())

    async def _handle_sweep(
        self, headers: Dict[str, str], body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Fan one sweep out into a job per threshold.

        Body: ``{"min_sups": [...], "request": <mining-request dict>}``.
        The jobs share the service cache, so after the lowest threshold
        mines, the cache's per-root entries answer the rest (and any
        tenant's later repeats) without searching.
        """
        tenant = headers.get("x-clan-tenant", DEFAULT_TENANT).strip() or DEFAULT_TENANT
        payload = json.loads(body.decode("utf-8"))
        thresholds = payload.get("min_sups")
        if not isinstance(thresholds, list) or not thresholds:
            raise MiningError("sweep body requires a non-empty 'min_sups' list")
        template = MiningRequest.from_dict(payload["request"])
        jobs = [
            self.submit(
                dataclasses.replace(template, min_sup=min_sup), tenant
            )
            for min_sup in thresholds
        ]
        await self._respond(
            writer, 202, {"jobs": [job.status() for job in jobs]}
        )

    async def _handle_cancel(
        self, job: MiningJob, writer: asyncio.StreamWriter
    ) -> None:
        if job.finished:
            await self._respond(writer, 409, job.status())
            return
        if job.state == "queued" and self._queue.remove(job.tenant, job.job_id):
            self._finish_job(
                job, "cancelled", "cancelled while queued", release_slot=False
            )
        else:
            self._cancel_requested.add(job.job_id)
            if job.session is not None:
                job.session.cancel()
        await self._respond(writer, 202, job.status())

    async def _handle_result(
        self, job: MiningJob, query: Dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        if not job.finished and query.get("wait"):
            timeout = float(query.get("timeout", "300"))
            try:
                await asyncio.wait_for(self._wait_finished(job), timeout)
            except asyncio.TimeoutError:
                pass
        if not job.finished:
            await self._respond(
                writer, 404, {"error": f"job {job.job_id} is {job.state}"}
            )
            return
        result_path = self._result_path(job.job_id)
        if not result_path.exists():
            await self._respond(
                writer,
                404,
                {"error": f"job {job.job_id} is {job.state}: {job.error}"},
            )
            return
        envelope = open_envelope(result_path)
        payload = envelope.to_dict()
        payload["job"] = job.status()
        await self._respond(writer, 200, payload)

    async def _wait_finished(self, job: MiningJob) -> None:
        while not job.finished:
            await self._signal(job.job_id).wait()

    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": states,
            "queued": self._queue.depth_by_tenant(),
            "tenants": self.tenants.snapshot(),
            "max_concurrency": self.max_concurrency,
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
            },
        }
