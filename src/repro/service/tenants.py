"""Tenant accounting for the mining service.

The control plane is multi-tenant: every job is submitted under a
tenant name (the ``X-Clan-Tenant`` header; ``"default"`` when absent)
and the scheduler round-robins *between* tenants so one chatty client
cannot starve another (see :class:`repro.service.queue.FairJobQueue`).
This module is the bookkeeping side: per-tenant submission and
completion counters, surfaced by ``GET /v1/stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

DEFAULT_TENANT = "default"


@dataclass
class Tenant:
    """Lifetime counters for one tenant."""

    name: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0

    @property
    def active(self) -> int:
        """Jobs submitted but not yet finished in any way."""
        return self.submitted - self.completed - self.failed - self.cancelled

    def snapshot(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "active": self.active,
        }


@dataclass
class TenantBook:
    """All tenants the service has seen, keyed by name."""

    tenants: Dict[str, Tenant] = field(default_factory=dict)

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = Tenant(name=name)
            self.tenants[name] = tenant
        return tenant

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {
            name: tenant.snapshot()
            for name, tenant in sorted(self.tenants.items())
        }
