"""Mining-as-a-service: the HTTP control plane over :func:`repro.mine`.

The library side of ``clan serve``.  A :class:`MiningService` owns one
graph database and mines it for many tenants: jobs are typed
:class:`~repro.core.api.MiningRequest` payloads submitted over HTTP,
scheduled fairly across tenants (:class:`FairJobQueue`), executed as
:class:`~repro.core.session.MiningSession` runs with per-job budget
SLOs, observable live as JSONL or SSE event streams, checkpointed root
by root for crash recovery, and answered from one shared persistent
:class:`~repro.core.cache.MiningCache` (:class:`SharedCache`).

See :mod:`repro.service.server` for the endpoint table and
``docs/API.md`` for the wire schema.
"""

from .jobs import JOB_STATES, MiningJob, SharedCache
from .queue import FairJobQueue
from .server import MiningService
from .tenants import DEFAULT_TENANT, Tenant, TenantBook

__all__ = [
    "DEFAULT_TENANT",
    "FairJobQueue",
    "JOB_STATES",
    "MiningJob",
    "MiningService",
    "SharedCache",
    "Tenant",
    "TenantBook",
]
