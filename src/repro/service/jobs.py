"""Job records and the cross-tenant shared cache.

A job is one :class:`~repro.core.api.MiningRequest` owned by one
tenant, moving through ``queued → running → done`` (or ``failed`` /
``cancelled``).  The record is persisted to ``jobs/<id>.json`` in the
service's state directory on every transition, which is what makes the
control plane crash-tolerant: a restarted server re-reads the records,
re-enqueues anything unfinished, and resumes from the job's last
:class:`~repro.core.session.MiningCheckpoint` when one was written.

All jobs of all tenants share one :class:`SharedCache` — a
:class:`~repro.core.cache.MiningCache` whose mutating entry points are
serialized behind a lock, because jobs mine concurrently in worker
threads.  Tenant B's repeat of tenant A's request replays A's per-root
entries instead of searching (``statistics.roots_from_cache``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from ..core.api import MiningRequest
from ..core.cache import CachedRoot, MiningCache
from ..exceptions import MiningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.session import MiningSession

JOB_VERSION = 1

#: The job lifecycle.  ``queued`` and ``running`` are the unfinished
#: states a restarted server re-enqueues.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
UNFINISHED_STATES = ("queued", "running")


@dataclass
class MiningJob:
    """One tenant's mining request moving through the service."""

    job_id: str
    tenant: str
    request: MiningRequest
    state: str = "queued"
    error: Optional[str] = None
    #: Optional storage URI (a SQLite store under the service's
    #: ``storage_root``) this job mines instead of the service's
    #: default database.  ``None`` means the default.
    database_uri: Optional[str] = None
    #: Set while the job mines; the cancel endpoint pokes it.
    session: Optional["MiningSession"] = None
    #: Event-loop-side live state (not persisted): the event payloads
    #: streamed so far and the finished flag watchers poll.
    events: list = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.state not in UNFINISHED_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "mining-job",
            "version": JOB_VERSION,
            "id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "error": self.error,
            "database_uri": self.database_uri,
            "request": self.request.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MiningJob":
        if payload.get("kind") != "mining-job":
            raise MiningError(
                f"expected kind 'mining-job', got {payload.get('kind')!r}"
            )
        version = payload.get("version")
        if not isinstance(version, int) or not 1 <= version <= JOB_VERSION:
            raise MiningError(f"unsupported mining-job version {version!r}")
        state = payload.get("state")
        if state not in JOB_STATES:
            raise MiningError(f"unknown job state {state!r}")
        return cls(
            job_id=str(payload["id"]),
            tenant=str(payload["tenant"]),
            request=MiningRequest.from_dict(payload["request"]),
            state=state,
            error=payload.get("error"),
            database_uri=payload.get("database_uri"),
        )

    def status(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` payload."""
        payload = self.to_dict()
        payload["events"] = len(self.events)
        return payload


class SharedCache(MiningCache):
    """A :class:`MiningCache` shared by concurrently-mining jobs.

    Sessions only touch ``lookup`` and ``store``; persistence uses
    ``to_dict``.  Guarding those three behind one re-entrant lock makes
    the cache safe for the service's worker threads without changing
    any semantics — single-threaded callers pay one uncontended lock.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()

    @classmethod
    def wrap(cls, cache: MiningCache) -> "SharedCache":
        """Adopt an existing cache's entries (e.g. one read from disk)."""
        if isinstance(cache, cls):
            return cache
        shared = cls()
        shared._entries = cache._entries
        shared._supports = cache._supports
        return shared

    def lookup(self, *args: Any, **kwargs: Any) -> Optional[CachedRoot]:
        with self._lock:
            return super().lookup(*args, **kwargs)

    def store(self, fingerprint: str, config_digest: str, entry: CachedRoot) -> None:
        with self._lock:
            super().store(fingerprint, config_digest, entry)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return super().to_dict()
