"""Round-robin fair job queue.

One shared FIFO would let a tenant that submits 100 jobs starve a
tenant that submits 1.  The service instead keeps a FIFO *per tenant*
and a round-robin ring over the tenants that currently have queued
work: each scheduling step serves the next tenant in the ring one job,
then rotates.  Within a tenant, submission order is preserved; across
tenants, queue depth is irrelevant to latency — a tenant's first job
waits behind at most one job per other active tenant.

The queue is plain single-threaded state: the service only touches it
from the asyncio event-loop thread.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple


class FairJobQueue:
    """Per-tenant FIFOs drained round-robin across tenants."""

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[str]] = {}
        self._ring: Deque[str] = deque()

    def push(self, tenant: str, job_id: str) -> None:
        """Enqueue a job for a tenant (FIFO within the tenant)."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        if not queue:
            self._ring.append(tenant)
        queue.append(job_id)

    def pop_next(self) -> Optional[Tuple[str, str]]:
        """Dequeue the next (tenant, job_id) in round-robin order."""
        if not self._ring:
            return None
        tenant = self._ring.popleft()
        queue = self._queues[tenant]
        job_id = queue.popleft()
        if queue:
            self._ring.append(tenant)
        else:
            del self._queues[tenant]
        return tenant, job_id

    def remove(self, tenant: str, job_id: str) -> bool:
        """Drop one queued job (cancellation); False when not queued."""
        queue = self._queues.get(tenant)
        if queue is None or job_id not in queue:
            return False
        queue.remove(job_id)
        if not queue:
            del self._queues[tenant]
            self._ring.remove(tenant)
        return True

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def depth_by_tenant(self) -> Dict[str, int]:
        return {tenant: len(queue) for tenant, queue in self._queues.items()}

    def queued_ids(self) -> List[str]:
        """All queued job ids, in the order they would be served."""
        queues = {tenant: deque(queue) for tenant, queue in self._queues.items()}
        ring = deque(self._ring)
        order: List[str] = []
        while ring:
            tenant = ring.popleft()
            order.append(queues[tenant].popleft())
            if queues[tenant]:
                ring.append(tenant)
        return order
