"""Correlated-stock analysis on mining results (paper Section 5.1).

The paper's application: mine the frequent closed cliques of the
market database, report those of size ≥ 3, and highlight the maximum
clique — 12 funds whose prices "evolve in a similar way", so a price
change in one predicts the others.  This module packages that readout
and the prediction rationale (average pairwise correlation of the
clique members across periods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.results import MiningResult
from .correlation import correlation_matrix
from .pricegen import PeriodPrices


@dataclass(frozen=True)
class CorrelatedGroup:
    """One mined group of co-moving stocks."""

    tickers: Tuple[str, ...]
    support: int
    n_periods: int

    @property
    def size(self) -> int:
        return len(self.tickers)

    @property
    def persistent(self) -> bool:
        """Whether the group co-moves in every period (support 100%)."""
        return self.support == self.n_periods

    def describe(self) -> str:
        share = 100.0 * self.support / self.n_periods
        return (
            f"{self.size} stocks ({', '.join(self.tickers)}) correlated in "
            f"{self.support}/{self.n_periods} periods ({share:.0f}%)"
        )


def correlated_groups(
    result: MiningResult, n_periods: int, min_size: int = 3
) -> List[CorrelatedGroup]:
    """Convert mined patterns into correlated stock groups, largest first."""
    groups = [
        CorrelatedGroup(tickers=p.labels, support=p.support, n_periods=n_periods)
        for p in result.at_least_size(min_size)
    ]
    groups.sort(key=lambda g: (-g.size, -g.support, g.tickers))
    return groups


def maximum_group(result: MiningResult, n_periods: int) -> Optional[CorrelatedGroup]:
    """The Figure 5 readout: the largest mined clique (ties: first)."""
    top = correlated_groups(result, n_periods, min_size=1)
    return top[0] if top else None


def group_correlation_profile(
    group: Sequence[str], panels: Sequence[PeriodPrices]
) -> Dict[int, float]:
    """Minimum pairwise Equation 1 correlation of a group, per period.

    The paper's "quite safe to say" argument rests on every pair
    staying above θ in every period; this profile quantifies it.
    Stocks absent from a period are skipped (the period reports nan).
    """
    profile: Dict[int, float] = {}
    wanted = list(group)
    for panel in panels:
        index = {t: i for i, t in enumerate(panel.tickers)}
        if any(t not in index for t in wanted):
            profile[panel.period] = float("nan")
            continue
        cols = [index[t] for t in wanted]
        corr = correlation_matrix(panel.prices[:, cols])
        off_diagonal = corr[~np.eye(len(cols), dtype=bool)]
        profile[panel.period] = float(off_diagonal.min())
    return profile


def report(
    result: MiningResult,
    n_periods: int,
    min_size: int = 3,
    limit: int = 10,
) -> str:
    """Human-readable summary in the voice of Section 5.1."""
    groups = correlated_groups(result, n_periods, min_size)
    lines = [
        f"{len(groups)} frequent closed cliques of size >= {min_size} "
        f"(max size {groups[0].size if groups else 0})"
    ]
    for group in groups[:limit]:
        lines.append("  " + group.describe())
    if len(groups) > limit:
        lines.append(f"  ... and {len(groups) - limit} more")
    return "\n".join(lines)
