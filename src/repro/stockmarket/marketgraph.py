"""Market-graph construction (paper Section 5.1).

Each stock is a vertex labeled with its ticker; an edge joins two
stocks whose Equation 1 correlation over the period exceeds the
threshold θ.  Following Table 1's vertex counts (which are far below
the universe size and grow with falling θ), isolated stocks are not
materialised as vertices.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DataGenerationError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph
from .correlation import correlation_matrix
from .pricegen import PeriodPrices, StockMarketSimulator


def market_graph_from_correlations(
    tickers: Sequence[str],
    correlations: np.ndarray,
    theta: float,
    graph_id: Optional[int] = None,
    keep_isolated: bool = False,
) -> Graph:
    """Threshold a correlation matrix into a labeled market graph."""
    if not -1.0 <= theta <= 1.0:
        raise DataGenerationError(f"theta must be in [-1, 1], got {theta}")
    n = len(tickers)
    if correlations.shape != (n, n):
        raise DataGenerationError(
            f"correlation matrix shape {correlations.shape} does not match "
            f"{n} tickers"
        )
    rows, cols = np.where(np.triu(correlations, k=1) > theta)
    graph = Graph(graph_id)
    if keep_isolated:
        for vertex, ticker in enumerate(tickers):
            graph.add_vertex(vertex, ticker)
    else:
        connected = sorted(set(rows.tolist()) | set(cols.tolist()))
        for vertex in connected:
            graph.add_vertex(int(vertex), tickers[vertex])
    for u, v in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(int(u), int(v))
    return graph


def market_graph_from_prices(
    period: PeriodPrices,
    theta: float,
    keep_isolated: bool = False,
) -> Graph:
    """Build one period's market graph from its price panel."""
    correlations = correlation_matrix(period.prices)
    return market_graph_from_correlations(
        period.tickers, correlations, theta, graph_id=period.period,
        keep_isolated=keep_isolated,
    )


def build_market_database(
    simulator: StockMarketSimulator,
    theta: float,
    keep_isolated: bool = False,
    name: Optional[str] = None,
) -> GraphDatabase:
    """Simulate all periods and threshold them into one database.

    The result is the paper's ``stock market-θ`` database: one graph
    per period, vertices labeled by ticker.
    """
    database = GraphDatabase(
        name=name if name is not None else f"stock-market-{theta:.2f}"
    )
    for period in simulator.simulate_all():
        database.add(market_graph_from_prices(period, theta, keep_isolated))
    return database


def build_market_databases(
    simulator: StockMarketSimulator,
    thetas: Sequence[float],
) -> Tuple[GraphDatabase, ...]:
    """Build one database per θ from a single set of simulated panels.

    Simulating once and thresholding repeatedly matches the paper's
    derivation of the six stock-market databases from the same raw
    price data (θ = 0.90 .. 0.95), and is much cheaper than six
    simulations.
    """
    panels = simulator.simulate_all()
    correlations = [(p, correlation_matrix(p.prices)) for p in panels]
    databases = []
    for theta in thetas:
        database = GraphDatabase(name=f"stock-market-{theta:.2f}")
        for period, corr in correlations:
            database.add(
                market_graph_from_correlations(
                    period.tickers, corr, theta, graph_id=period.period
                )
            )
        databases.append(database)
    return tuple(databases)
