"""The evaluation's stock-market databases (paper Table 1).

The paper derives six databases from the same 11-period price data by
thresholding at θ = 0.90 .. 0.95.  :func:`stock_market_database` and
:func:`stock_market_series` rebuild that family from the simulator at a
configurable scale.  Scales:

* ``small``  — default; ~400 stocks × 120 days, minable in seconds.
* ``medium`` — ~900 stocks × 250 days, for longer benchmark runs.
* ``paper``  — ~6000 stocks × 500 days, the published size (pure
  Python needs hours here; provided for completeness).

An in-process cache keys panels by (scale, seed) so the benchmark suite
only ever simulates once per scale.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..exceptions import DataGenerationError
from ..graphdb.database import GraphDatabase
from .marketgraph import build_market_databases
from .pricegen import MarketConfig, StockMarketSimulator

#: The thresholds of the paper's six stock-market databases.
PAPER_THETAS: Tuple[float, ...] = (0.90, 0.91, 0.92, 0.93, 0.94, 0.95)

_SCALES: Dict[str, Dict[str, int]] = {
    "tiny": {"n_stocks": 150, "days_per_period": 80, "n_sectors": 5},
    "small": {"n_stocks": 400, "days_per_period": 120, "n_sectors": 8},
    "medium": {"n_stocks": 900, "days_per_period": 250, "n_sectors": 14},
    "paper": {"n_stocks": 6000, "days_per_period": 500, "n_sectors": 30},
}

_cache: Dict[Tuple[str, int, float], GraphDatabase] = {}


def market_config(scale: str = "small", seed: int = 7) -> MarketConfig:
    """The :class:`MarketConfig` for a named scale."""
    try:
        params = _SCALES[scale]
    except KeyError:
        raise DataGenerationError(
            f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}"
        ) from None
    return MarketConfig(seed=seed, **params)


def stock_market_series(
    thetas: Sequence[float] = PAPER_THETAS,
    scale: str = "small",
    seed: int = 7,
) -> List[GraphDatabase]:
    """Build (or fetch cached) market databases for several thresholds."""
    missing = [t for t in thetas if (scale, seed, t) not in _cache]
    if missing:
        simulator = StockMarketSimulator(market_config(scale, seed))
        for theta, database in zip(missing, build_market_databases(simulator, missing)):
            _cache[(scale, seed, theta)] = database
    return [_cache[(scale, seed, t)] for t in thetas]


def stock_market_database(
    theta: float = 0.90,
    scale: str = "small",
    seed: int = 7,
) -> GraphDatabase:
    """One market database, cached."""
    return stock_market_series((theta,), scale=scale, seed=seed)[0]


def clear_cache() -> None:
    """Drop all cached databases (tests use this to control memory)."""
    _cache.clear()
