"""Synthetic US stock market price generator.

The paper evaluates on 11 sets of proprietary US stock market data
(daily prices of ~5.4–6.6k stocks over 11 × 500 consecutive trading
days, from Boginski et al.).  This module simulates that resource with
a standard factor model so the *pipeline* — prices → Equation 1
correlations → θ-thresholded market graphs → CLAN — is identical and
its behavioural properties are preserved:

* a market factor and sector factors give each period a dense
  correlation background whose graph density rises steeply as the
  threshold θ falls (the Table 1 gradient);
* planted *fund groups* — modelled on the 12 municipal-bond funds of
  Figure 5 — share a group return factor with small idiosyncratic
  noise, so their price paths stay correlated above θ in every period
  (support 100% patterns), with per-member noise heterogeneity and
  per-period activity windows creating the sub-clique and
  lower-support structure the support sweep of Figure 6(a) exercises;
* the stock universe shrinks period over period (delistings), like the
  paper's 6556 → 5430 decline.

Returns are simulated per period as

    r_i(t) = β_m(i)·M(t) + β_s(i)·S_{sec(i)}(t) + G_{grp(i)}(t) + σ_i·ε_i(t)

(group term only for fund-group members) and prices follow a geometric
path ``P(t) = 100·exp(0.01·Σ r)``.  Correlations are computed on raw
prices, exactly as the paper's Equation 1 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import DataGenerationError
from .tickers import FIGURE5_TICKERS, universe_with_figure5


@dataclass(frozen=True)
class GroupSpec:
    """A planted fund group.

    Attributes
    ----------
    tickers:
        Member tickers (must exist in the universe).
    noise_scales:
        Per-member idiosyncratic noise scale relative to the group
        factor; ~0.1 keeps pairwise price correlations above 0.95,
        ~0.35 keeps them above ≈0.90 but usually below 0.95.
    active_periods:
        Periods (0-based) in which the group is tight; in the others
        the members' noise is multiplied by ``inactive_boost``, which
        breaks the clique there and lowers the pattern's support.
        ``None`` means active in every period.
    inactive_boost:
        Noise multiplier outside the active periods.
    """

    tickers: Tuple[str, ...]
    noise_scales: Tuple[float, ...]
    active_periods: Optional[Tuple[int, ...]] = None
    inactive_boost: float = 8.0

    def __post_init__(self) -> None:
        if len(self.tickers) != len(self.noise_scales):
            raise DataGenerationError("one noise scale per group member is required")
        if len(set(self.tickers)) != len(self.tickers):
            raise DataGenerationError(f"duplicate tickers in group {self.tickers!r}")
        if any(scale <= 0 for scale in self.noise_scales):
            raise DataGenerationError("noise scales must be positive")

    @classmethod
    def uniform(
        cls,
        tickers: Sequence[str],
        noise_scale: float,
        active_periods: Optional[Sequence[int]] = None,
    ) -> "GroupSpec":
        """A group whose members share one noise scale."""
        return cls(
            tickers=tuple(tickers),
            noise_scales=(noise_scale,) * len(tickers),
            active_periods=tuple(active_periods) if active_periods is not None else None,
        )

    def is_active(self, period: int) -> bool:
        """Whether the group is tight in the given period."""
        return self.active_periods is None or period in self.active_periods


@dataclass
class MarketConfig:
    """Knobs of the simulated market (defaults target laptop-scale runs).

    The paper-scale configuration (~6000 stocks, 500 days) is
    :func:`paper_scale_config`; the default keeps the same structure at
    a size pure Python can mine in benchmark time.
    """

    n_stocks: int = 400
    n_periods: int = 11
    days_per_period: int = 120
    seed: int = 7
    n_sectors: int = 8
    market_beta_range: Tuple[float, float] = (0.2, 0.8)
    sector_beta_range: Tuple[float, float] = (0.2, 0.7)
    idio_scale_range: Tuple[float, float] = (0.9, 1.5)
    group_market_beta: float = 0.15
    #: Fraction of background stocks tightly coupled to their sector
    #: factor.  Their pairwise correlations land just around the θ
    #: band (0.75–0.95), which is what makes graph density climb
    #: steeply as θ falls — the Table 1 gradient.
    sector_coupled_fraction: float = 0.6
    sector_coupled_share_range: Tuple[float, float] = (0.78, 0.93)
    attrition_per_period: float = 0.018
    groups: Optional[List[GroupSpec]] = None

    def __post_init__(self) -> None:
        if self.n_stocks < 50:
            raise DataGenerationError("the simulator needs at least 50 stocks")
        if self.n_periods < 1:
            raise DataGenerationError("need at least one period")
        if self.days_per_period < 20:
            raise DataGenerationError("need at least 20 trading days per period")
        if not 0.0 <= self.attrition_per_period < 0.2:
            raise DataGenerationError("attrition must be in [0, 0.2)")


def default_group_structure(
    universe: Sequence[str], n_periods: int, rng: np.random.Generator
) -> List[GroupSpec]:
    """The planted fund-group layout used by the shipped datasets.

    One ultra-tight 12-member group on the Figure 5 tickers (the
    maximum clique at θ = 0.9, support 100%), then

    * *fund families* — larger groups with widely spread member noise,
      whose per-period cliques differ so their 11-period intersections
      carve out many distinct closed sub-cliques (the bulk of the
      paper's 327 size-≥3 closed cliques at 100% support);
    * *tight groups* that survive θ = 0.95 in every period;
    * *medium groups* that cohere at θ = 0.90 but thin out by 0.95;
    * *part-time groups*, tight in only 8–10 of the periods, which
      surface as min_sup drops from 100% toward 85% (Figure 6(a)).

    The ladder shrinks with the universe so reduced scales keep the
    same qualitative structure.
    """
    non_reserved = [t for t in universe if t not in set(FIGURE5_TICKERS)]
    rng.shuffle(non_reserved)
    cursor = 0

    def take(count: int) -> List[str]:
        nonlocal cursor
        if cursor + count > len(non_reserved):
            raise DataGenerationError("universe too small for the default group layout")
        picked = non_reserved[cursor : cursor + count]
        cursor += count
        return picked

    large = len(universe) >= 350
    # Above ~800 stocks, replicate the whole ladder so structure (and
    # closed-clique counts) keep growing with the universe, as the real
    # market's do.
    tiers = max(1, len(universe) // 450) if large else 1
    groups: List[GroupSpec] = [
        GroupSpec.uniform(sorted(FIGURE5_TICKERS), noise_scale=0.08),
    ]
    # Fund families: wide noise spread -> partially persistent cliques
    # whose 11-period intersections carve many closed sub-cliques.
    family_sizes = (20, 18, 16, 15, 14, 13, 12, 11, 10) * tiers if large else (12, 10)
    for size in family_sizes:
        scales = tuple(float(s) for s in rng.uniform(0.15, 0.36, size=size))
        groups.append(GroupSpec(tickers=tuple(take(size)), noise_scales=scales))
    # Tight groups surviving θ = 0.95 in all periods.  Capped at size 9
    # so the Figure 5 twelve stay the unique maximum at every θ.
    for size in (9, 7, 5, 4, 3) * tiers if large else (7, 4, 3):
        groups.append(GroupSpec.uniform(take(size), noise_scale=0.10))
    # Medium groups: above 0.90 everywhere, mostly below 0.95.
    for size in (10, 8, 6, 5, 4, 4, 3, 3) * tiers if large else (8, 5, 4, 3):
        scales = tuple(float(s) for s in rng.uniform(0.16, 0.32, size=size))
        groups.append(GroupSpec(tickers=tuple(take(size)), noise_scales=scales))
    # Part-time groups; the mild inactive boost leaves persistent cores
    # behind, adding 100%-support sub-cliques as well.
    part_time = ((8, 10), (6, 10), (5, 9), (4, 9), (4, 8), (3, 8)) * tiers if large else ((6, 10), (4, 9))
    for size, active_count in part_time:
        active_count = min(active_count, n_periods)
        active = tuple(sorted(rng.choice(n_periods, size=active_count, replace=False).tolist()))
        groups.append(
            GroupSpec(
                tickers=tuple(take(size)),
                noise_scales=(0.12,) * size,
                active_periods=active,
                inactive_boost=2.5,
            )
        )
    return groups


def paper_scale_config(seed: int = 7) -> MarketConfig:
    """The full paper-scale market (slow to mine in pure Python)."""
    return MarketConfig(
        n_stocks=6000,
        n_periods=11,
        days_per_period=500,
        seed=seed,
        n_sectors=30,
    )


@dataclass(frozen=True)
class PeriodPrices:
    """One period's price panel."""

    period: int
    tickers: Tuple[str, ...]
    #: shape (days, len(tickers)) array of daily prices.
    prices: np.ndarray


class StockMarketSimulator:
    """Deterministic factor-model price simulator.

    All randomness derives from ``config.seed``; the same configuration
    always yields the same panels, which the benchmarks depend on.
    """

    def __init__(self, config: Optional[MarketConfig] = None) -> None:
        self.config = config if config is not None else MarketConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self.universe: List[str] = universe_with_figure5(cfg.n_stocks)
        index = {ticker: i for i, ticker in enumerate(self.universe)}

        self.groups: List[GroupSpec] = (
            cfg.groups
            if cfg.groups is not None
            else default_group_structure(self.universe, cfg.n_periods, rng)
        )
        self._group_of: Dict[int, Tuple[int, float]] = {}
        for gid, group in enumerate(self.groups):
            for ticker, scale in zip(group.tickers, group.noise_scales):
                if ticker not in index:
                    raise DataGenerationError(f"group ticker {ticker!r} not in universe")
                if index[ticker] in self._group_of:
                    raise DataGenerationError(f"ticker {ticker!r} is in two groups")
                self._group_of[index[ticker]] = (gid, scale)

        n = cfg.n_stocks
        self._market_beta = rng.uniform(*cfg.market_beta_range, size=n)
        self._sector = rng.integers(0, cfg.n_sectors, size=n)
        self._sector_beta = rng.uniform(*cfg.sector_beta_range, size=n)
        self._idio_scale = rng.uniform(*cfg.idio_scale_range, size=n)
        # Sector-coupled background stocks: unit total variance split
        # between the sector factor (share f) and idiosyncratic noise,
        # so same-sector pairs correlate around sqrt(f_i * f_j) — the
        # near-threshold mass behind the Table 1 density gradient.
        coupled = rng.random(n) < cfg.sector_coupled_fraction
        shares = rng.uniform(*cfg.sector_coupled_share_range, size=n)
        for stock in range(n):
            if coupled[stock]:
                f = shares[stock]
                self._market_beta[stock] = 0.1
                self._sector_beta[stock] = float(np.sqrt(f))
                self._idio_scale[stock] = float(np.sqrt(1.0 - f))
        for stock, (gid, scale) in self._group_of.items():
            self._market_beta[stock] = cfg.group_market_beta
            self._sector_beta[stock] = 0.0
            self._idio_scale[stock] = scale

        # Delistings: background stocks exit with the configured
        # per-period hazard; group members always survive so the
        # planted patterns keep their designed supports.
        self._last_period = np.full(n, cfg.n_periods - 1, dtype=int)
        hazard = cfg.attrition_per_period
        if hazard > 0:
            for stock in range(n):
                if stock in self._group_of:
                    continue
                for period in range(cfg.n_periods):
                    if rng.random() < hazard:
                        self._last_period[stock] = period
                        break

    # ------------------------------------------------------------------
    def present_in_period(self, period: int) -> np.ndarray:
        """Boolean mask of stocks trading in the given period."""
        self._check_period(period)
        return self._last_period >= period

    def simulate_period(self, period: int) -> PeriodPrices:
        """Simulate one period's daily price panel."""
        self._check_period(period)
        cfg = self.config
        rng = np.random.default_rng((cfg.seed, period))
        days = cfg.days_per_period
        n = cfg.n_stocks

        market = rng.normal(size=days)
        sectors = rng.normal(size=(days, cfg.n_sectors))
        group_factors = rng.normal(size=(days, max(1, len(self.groups))))
        idio = rng.normal(size=(days, n))

        returns = (
            market[:, None] * self._market_beta[None, :]
            + sectors[:, self._sector] * self._sector_beta[None, :]
            + idio * self._idio_scale[None, :]
        )
        for stock, (gid, scale) in self._group_of.items():
            group = self.groups[gid]
            noise = scale if group.is_active(period) else scale * group.inactive_boost
            returns[:, stock] = (
                market * cfg.group_market_beta
                + group_factors[:, gid]
                + idio[:, stock] * noise
            )

        prices = 100.0 * np.exp(0.01 * np.cumsum(returns, axis=0))
        mask = self.present_in_period(period)
        tickers = tuple(t for t, keep in zip(self.universe, mask) if keep)
        return PeriodPrices(period=period, tickers=tickers, prices=prices[:, mask])

    def simulate_all(self) -> List[PeriodPrices]:
        """Simulate every period's panel."""
        return [self.simulate_period(p) for p in range(self.config.n_periods)]

    def expected_group_tickers(self) -> List[Tuple[str, ...]]:
        """Sorted member tuples of every planted group (ground truth)."""
        return [tuple(sorted(g.tickers)) for g in self.groups]

    # ------------------------------------------------------------------
    def _check_period(self, period: int) -> None:
        if not 0 <= period < self.config.n_periods:
            raise DataGenerationError(
                f"period {period} out of range [0, {self.config.n_periods})"
            )
