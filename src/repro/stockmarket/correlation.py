"""Price cross-correlation — the paper's Equation 1.

Given two stocks' daily prices over a period T, the paper defines

    C(S1, S2) = ( (1/|T|) Σ_i (S1_i · S2_i) − mean(S1)·mean(S2) )
                / (σ(S1) · σ(S2))

with population (1/|T|) moments — i.e. the Pearson correlation of the
raw price series.  ``correlation_matrix`` evaluates it for a whole
price panel at once with numpy; ``pair_correlation`` is the literal
scalar transcription used for cross-checking in tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import DataGenerationError


def pair_correlation(prices_a: Sequence[float], prices_b: Sequence[float]) -> float:
    """Equation 1 for a single pair, transcribed term by term."""
    a = np.asarray(prices_a, dtype=float)
    b = np.asarray(prices_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise DataGenerationError("price series must be 1-D and equally long")
    t = a.shape[0]
    if t < 2:
        raise DataGenerationError("need at least two days of prices")
    mean_ab = float(np.sum(a * b)) / t
    mean_a = float(np.sum(a)) / t
    mean_b = float(np.sum(b)) / t
    var_a = float(np.sum(a * a)) / t - mean_a * mean_a
    var_b = float(np.sum(b * b)) / t - mean_b * mean_b
    if var_a <= 0.0 or var_b <= 0.0:
        raise DataGenerationError("constant price series have undefined correlation")
    return (mean_ab - mean_a * mean_b) / (var_a ** 0.5 * var_b ** 0.5)


def correlation_matrix(prices: np.ndarray) -> np.ndarray:
    """Equation 1 over a full panel.

    Parameters
    ----------
    prices:
        Array of shape ``(days, n_stocks)``.

    Returns
    -------
    numpy.ndarray
        Symmetric ``(n_stocks, n_stocks)`` matrix with unit diagonal.
        Stocks with zero variance (constant price) get correlation 0
        with everyone — they carry no co-movement information.
    """
    panel = np.asarray(prices, dtype=float)
    if panel.ndim != 2:
        raise DataGenerationError("price panel must be 2-D (days x stocks)")
    days = panel.shape[0]
    if days < 2:
        raise DataGenerationError("need at least two days of prices")

    centered = panel - panel.mean(axis=0, keepdims=True)
    cov = centered.T @ centered / days
    std = np.sqrt(np.diag(cov))
    degenerate = std <= 0.0
    safe_std = np.where(degenerate, 1.0, std)
    corr = cov / np.outer(safe_std, safe_std)
    corr[degenerate, :] = 0.0
    corr[:, degenerate] = 0.0
    np.fill_diagonal(corr, 1.0)
    # Numerical guard: clamp round-off excursions outside [-1, 1].
    np.clip(corr, -1.0, 1.0, out=corr)
    return corr


def log_returns(prices: np.ndarray) -> np.ndarray:
    """Daily log returns, ``ln(P_t / P_{t-1})``; shape (days−1, stocks)."""
    panel = np.asarray(prices, dtype=float)
    if panel.ndim != 2 or panel.shape[0] < 2:
        raise DataGenerationError("need a 2-D panel with at least two days")
    if np.any(panel <= 0.0):
        raise DataGenerationError("log returns require strictly positive prices")
    return np.diff(np.log(panel), axis=0)


def returns_correlation_matrix(prices: np.ndarray) -> np.ndarray:
    """Equation 1 applied to daily log returns instead of price levels.

    The market-graph literature the paper builds on (Boginski et al.)
    computes correlations of *returns*; the paper's Equation 1 is
    written over prices.  Both are provided so the methodological choice
    can be measured; return correlations are less subject to the
    spurious-trend inflation of price-level correlations, so the same
    θ yields sparser graphs.
    """
    return correlation_matrix(log_returns(prices))
