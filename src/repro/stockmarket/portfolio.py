"""Quantifying the paper's prediction claim.

Section 5.1 argues that because the 12-fund clique's prices "evolve in
a similar way ... a price change of any stock in the clique can be used
to predict a similar change of the prices of all other 11 stocks."
This module turns that sentence into a measurement:

* for a target stock and a predictor group, predict each day's price
  direction (up/down) from the majority direction of the group's other
  members that day;
* report the hit rate over a period, and compare clique-mates against
  random non-clique predictors.

On the simulated market the clique-based predictor should sit far above
the ~50% coin-flip baseline; the benchmark and example assert exactly
that shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import DataGenerationError
from .pricegen import PeriodPrices


@dataclass(frozen=True)
class PredictionScore:
    """Direction-prediction accuracy of one predictor set for one target."""

    target: str
    predictors: Tuple[str, ...]
    hits: int
    days: int

    @property
    def hit_rate(self) -> float:
        """Fraction of days the majority direction matched the target's."""
        if self.days == 0:
            return 0.0
        return self.hits / self.days

    def describe(self) -> str:
        return (
            f"{self.target} from {len(self.predictors)} predictors: "
            f"{self.hit_rate:.1%} over {self.days} days"
        )


def _directions(prices: np.ndarray) -> np.ndarray:
    """Signs of daily price changes; shape (days-1, stocks)."""
    return np.sign(np.diff(prices, axis=0))


def direction_prediction_score(
    panel: PeriodPrices,
    target: str,
    predictors: Sequence[str],
) -> PredictionScore:
    """Score majority-vote direction prediction of ``target``.

    Days on which the target or the majority is flat are skipped (no
    direction to predict or no signal to predict from).
    """
    index = {t: i for i, t in enumerate(panel.tickers)}
    if target not in index:
        raise DataGenerationError(f"target {target!r} not in this period")
    predictor_list = [p for p in predictors if p != target]
    missing = [p for p in predictor_list if p not in index]
    if missing:
        raise DataGenerationError(f"predictors {missing!r} not in this period")
    if not predictor_list:
        raise DataGenerationError("need at least one predictor")

    directions = _directions(panel.prices)
    target_direction = directions[:, index[target]]
    votes = directions[:, [index[p] for p in predictor_list]].sum(axis=1)

    usable = (target_direction != 0) & (votes != 0)
    hits = int(np.sum(np.sign(votes[usable]) == target_direction[usable]))
    return PredictionScore(
        target=target,
        predictors=tuple(predictor_list),
        hits=hits,
        days=int(np.sum(usable)),
    )


def clique_prediction_study(
    panel: PeriodPrices,
    clique: Sequence[str],
    n_random_controls: int = 20,
    seed: int = 0,
) -> Dict[str, float]:
    """Compare clique-mate predictors against random control predictors.

    For every member of ``clique``, predict its direction from the rest
    of the clique, and from ``n_random_controls`` same-size random
    ticker sets.  Returns the mean hit rates and their gap.
    """
    members = [t for t in clique if t in set(panel.tickers)]
    if len(members) < 2:
        raise DataGenerationError("need at least two clique members in the period")
    rng = random.Random(seed)
    outside = [t for t in panel.tickers if t not in set(members)]

    clique_rates: List[float] = []
    control_rates: List[float] = []
    for target in members:
        mates = [t for t in members if t != target]
        clique_rates.append(
            direction_prediction_score(panel, target, mates).hit_rate
        )
        for _ in range(max(1, n_random_controls // len(members))):
            controls = rng.sample(outside, k=min(len(mates), len(outside)))
            control_rates.append(
                direction_prediction_score(panel, target, controls).hit_rate
            )

    clique_mean = sum(clique_rates) / len(clique_rates)
    control_mean = sum(control_rates) / len(control_rates)
    return {
        "clique_hit_rate": clique_mean,
        "control_hit_rate": control_mean,
        "advantage": clique_mean - control_mean,
    }
