"""Ticker universes for the synthetic US stock market.

The paper's market graphs label vertices with stock index names.  We
generate deterministic NYSE-style tickers, reserving the 12 real fund
tickers of Figure 5 (DMF, IQM, MEN, MNP, NPX, NUV, PPM, VCF, VKL, VMO,
VNV, XAA — municipal bond closed-end funds, which is *why* their prices
move in lockstep) for the planted maximum clique.
"""

from __future__ import annotations

import string
from typing import List, Sequence, Set

from ..exceptions import DataGenerationError

#: The 12 stocks of the paper's maximum frequent closed clique (Figure 5).
FIGURE5_TICKERS: tuple = (
    "DMF", "IQM", "MEN", "MNP", "NPX", "NUV",
    "PPM", "VCF", "VKL", "VMO", "VNV", "XAA",
)


def generate_tickers(count: int, reserved: Sequence[str] = FIGURE5_TICKERS) -> List[str]:
    """Generate ``count`` distinct 3-letter tickers, skipping ``reserved``.

    Tickers are produced in lexicographic order (AAA, AAB, ...), so the
    global label ordering CLAN relies on is simply alphabetical.  26³ =
    17576 combinations comfortably cover the paper's 6.5k universe.
    """
    if count < 0:
        raise DataGenerationError("ticker count must be non-negative")
    blocked: Set[str] = set(reserved)
    letters = string.ascii_uppercase
    tickers: List[str] = []
    for a in letters:
        for b in letters:
            for c in letters:
                if len(tickers) == count:
                    return tickers
                ticker = a + b + c
                if ticker in blocked:
                    continue
                tickers.append(ticker)
    if len(tickers) < count:
        raise DataGenerationError(
            f"cannot generate {count} distinct 3-letter tickers "
            f"({len(tickers)} available after reservations)"
        )
    return tickers


def universe_with_figure5(count: int) -> List[str]:
    """A universe of ``count`` tickers that includes the Figure 5 twelve.

    The reserved tickers are merged into their sorted positions so the
    returned list is fully sorted.
    """
    if count < len(FIGURE5_TICKERS):
        raise DataGenerationError(
            f"universe must hold at least the {len(FIGURE5_TICKERS)} Figure 5 tickers"
        )
    synthetic = generate_tickers(count - len(FIGURE5_TICKERS))
    return sorted(synthetic + list(FIGURE5_TICKERS))
