"""CSV price-panel I/O.

The original study starts from files of daily stock prices.  These
helpers read and write that representation so the whole Section 5.1
pipeline can be run against real exported data instead of (or alongside)
the simulator:

    date,AAPL,MSFT,...
    2004-01-02,21.28,27.45,...

One file per period.  Only prices matter to Equation 1, so dates are
carried through as opaque strings.  Stocks with any unparsable or
missing price in a period are rejected loudly — silent gaps would bias
the correlations.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from ..exceptions import FormatError
from .pricegen import PeriodPrices

PathLike = Union[str, Path]


def save_period_csv(period: PeriodPrices, path: PathLike, dates: Sequence[str] = ()) -> None:
    """Write one period's panel as a CSV with a header row.

    ``dates`` optionally labels the rows; defaults to day indices.
    """
    days = period.prices.shape[0]
    if dates and len(dates) != days:
        raise FormatError(
            f"{len(dates)} dates supplied for {days} trading days"
        )
    row_labels = list(dates) if dates else [f"day-{i:04d}" for i in range(days)]
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["date", *period.tickers])
        for label, row in zip(row_labels, period.prices):
            writer.writerow([label, *(f"{value:.6f}" for value in row)])


def load_period_csv(path: PathLike, period: int = 0) -> PeriodPrices:
    """Read one period's panel from CSV.

    The first column is the date label; every other column is one
    stock's daily prices.  Raises :class:`FormatError` on ragged rows,
    duplicate tickers, non-numeric cells, or fewer than two days.
    """
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise FormatError("empty CSV price file", 1) from None
        if len(header) < 2 or header[0].strip().lower() != "date":
            raise FormatError(
                "header must be 'date,<ticker>,<ticker>,...'", 1
            )
        tickers = tuple(t.strip() for t in header[1:])
        if any(not t for t in tickers):
            raise FormatError("empty ticker name in header", 1)
        if len(set(tickers)) != len(tickers):
            raise FormatError("duplicate ticker in header", 1)

        rows: List[List[float]] = []
        for line_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != len(tickers) + 1:
                raise FormatError(
                    f"row has {len(row)} cells, expected {len(tickers) + 1}",
                    line_number,
                )
            try:
                rows.append([float(cell) for cell in row[1:]])
            except ValueError as exc:
                raise FormatError(f"non-numeric price: {exc}", line_number) from None
    if len(rows) < 2:
        raise FormatError("need at least two trading days of prices")
    return PeriodPrices(period=period, tickers=tickers, prices=np.asarray(rows))


def save_panels_csv(
    panels: Sequence[PeriodPrices], directory: PathLike, prefix: str = "period"
) -> List[Path]:
    """Write one CSV per period into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for panel in panels:
        path = directory / f"{prefix}-{panel.period:02d}.csv"
        save_period_csv(panel, path)
        paths.append(path)
    return paths


def load_panels_csv(paths: Sequence[PathLike]) -> List[PeriodPrices]:
    """Read several period CSVs; period ids follow the argument order."""
    return [load_period_csv(path, period=i) for i, path in enumerate(paths)]
