"""Stock-market substrate: synthetic prices, Equation 1, market graphs.

Reproduces the pipeline of the paper's Section 5.1 end to end.  The
price data itself is simulated (the original US stock database is
proprietary); see DESIGN.md for the substitution argument.
"""

from .analysis import (
    CorrelatedGroup,
    correlated_groups,
    group_correlation_profile,
    maximum_group,
    report,
)
from .correlation import (
    correlation_matrix,
    log_returns,
    pair_correlation,
    returns_correlation_matrix,
)
from .io import (
    load_panels_csv,
    load_period_csv,
    save_panels_csv,
    save_period_csv,
)
from .datasets import (
    PAPER_THETAS,
    clear_cache,
    market_config,
    stock_market_database,
    stock_market_series,
)
from .marketgraph import (
    build_market_database,
    build_market_databases,
    market_graph_from_correlations,
    market_graph_from_prices,
)
from .portfolio import (
    PredictionScore,
    clique_prediction_study,
    direction_prediction_score,
)
from .pricegen import (
    GroupSpec,
    MarketConfig,
    PeriodPrices,
    StockMarketSimulator,
    default_group_structure,
    paper_scale_config,
)
from .tickers import FIGURE5_TICKERS, generate_tickers, universe_with_figure5

__all__ = [
    "FIGURE5_TICKERS",
    "PAPER_THETAS",
    "CorrelatedGroup",
    "GroupSpec",
    "MarketConfig",
    "PeriodPrices",
    "PredictionScore",
    "StockMarketSimulator",
    "clique_prediction_study",
    "direction_prediction_score",
    "build_market_database",
    "build_market_databases",
    "clear_cache",
    "correlated_groups",
    "correlation_matrix",
    "default_group_structure",
    "generate_tickers",
    "group_correlation_profile",
    "load_panels_csv",
    "load_period_csv",
    "log_returns",
    "returns_correlation_matrix",
    "market_config",
    "save_panels_csv",
    "save_period_csv",
    "market_graph_from_correlations",
    "market_graph_from_prices",
    "maximum_group",
    "pair_correlation",
    "paper_scale_config",
    "report",
    "stock_market_database",
    "stock_market_series",
    "universe_with_figure5",
]
