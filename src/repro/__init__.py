"""CLAN: mining frequent closed cliques from large dense graph databases.

A from-scratch reproduction of Wang, Zeng & Zhou, ICDE 2006.  The
top-level package re-exports the everyday API; see the subpackages for
the full surface:

* :mod:`repro.core` — the CLAN miner, canonical forms, results.
* :mod:`repro.graphdb` — graph transactions, databases, clique tools.
* :mod:`repro.baselines` — brute force, gSpan-style complete miner.
* :mod:`repro.stockmarket` — the Section 5.1 market-graph pipeline.
* :mod:`repro.chem` — the CA-like chemical database generator.
* :mod:`repro.io` — text / matrix / JSON formats.
* :mod:`repro.bench` — benchmark harness and experiment registry.

Quickstart::

    from repro import mine, paper_example_database
    result = mine(paper_example_database(), min_sup=2)
    print([p.key() for p in result])          # ['abcd:2', 'bde:2']

``repro.mine`` is the unified entry point — ``task=`` selects closed /
frequent / maximal / top-k / quasi mining, and budgets, event sinks,
checkpoints, and ``stream=True`` sessions hang off the same call (see
:mod:`repro.core.session`).  The older per-task functions remain
supported as thin wrappers.
"""

from .core import (
    CanonicalForm,
    ClanMiner,
    CliqueLattice,
    CliquePattern,
    MinerConfig,
    MiningBudget,
    MiningCache,
    MiningExecutor,
    MiningRequest,
    MiningResult,
    MiningResultEnvelope,
    MiningSession,
    mine,
    mine_closed_cliques,
    mine_closed_quasi_cliques,
    mine_frequent_cliques,
    mine_sharded,
    parse_support,
    sweep,
)
from .exceptions import ReproError
from .graphdb import Graph, GraphDatabase, paper_example_database

__version__ = "1.2.0"

__all__ = [
    "CanonicalForm",
    "ClanMiner",
    "CliqueLattice",
    "CliquePattern",
    "Graph",
    "GraphDatabase",
    "MinerConfig",
    "MiningBudget",
    "MiningCache",
    "MiningExecutor",
    "MiningRequest",
    "MiningResult",
    "MiningResultEnvelope",
    "MiningSession",
    "ReproError",
    "__version__",
    "mine",
    "mine_closed_cliques",
    "mine_closed_quasi_cliques",
    "mine_frequent_cliques",
    "mine_sharded",
    "paper_example_database",
    "parse_support",
    "sweep",
]
